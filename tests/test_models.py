"""Model zoo: construction, tracing, stage slicing."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.models import (
    build_alexnet,
    build_awd_lm,
    build_gnmt,
    build_mlp,
    build_resnet,
    build_s2vt,
    build_vgg,
)
from repro.models.base import LayeredModel
from repro.nn import Linear, ReLU, Sequential


class TestLayeredModel:
    def test_forward_matches_layerwise(self, rng):
        model = build_mlp(rng=rng)
        x = rng.standard_normal((4, 16))
        full = model(x).data
        stepped = model.wrap_input(x)
        for i in range(model.num_layers):
            stepped = model.layer(i)(stepped)
        np.testing.assert_array_equal(full, stepped.data)

    def test_forward_range(self, rng):
        model = build_mlp(rng=rng)
        x = rng.standard_normal((4, 16))
        mid = model.forward_range(x, 0, 2)
        out = model.forward_range(mid, 2, 3)
        np.testing.assert_allclose(out.data, model(x).data)

    def test_stage_module_shares_parameters(self, rng):
        model = build_mlp(rng=rng)
        stage = model.stage_module(0, 2)
        assert stage[0][0].weight is model.layer(0)[0].weight

    def test_duplicate_layer_names_rejected(self, rng):
        with pytest.raises(ValueError):
            LayeredModel("bad", [("a", ReLU()), ("a", ReLU())])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LayeredModel("bad", [])

    def test_layer_graph_param_counts(self, rng):
        model = build_mlp(in_features=8, hidden=(4,), num_classes=3, rng=rng)
        graph = model.layer_graph(np.zeros((1, 8)))
        assert graph.total_params == model.num_parameters()
        assert [l.name for l in graph] == model.layer_names

    def test_layer_graph_activation_elements(self, rng):
        model = build_mlp(in_features=8, hidden=(4,), num_classes=3, rng=rng)
        graph = model.layer_graph(np.zeros((1, 8)))
        assert graph.layers[0].output_elements == 4
        assert graph.layers[1].output_elements == 3


class TestVGG:
    def test_forward_shape(self, rng):
        model = build_vgg(scale=0.25, num_classes=7, rng=rng)
        out = model(rng.standard_normal((2, 3, 32, 32)))
        assert out.shape == (2, 7)

    def test_layer_structure(self, rng):
        model = build_vgg(scale=0.25, rng=rng)
        # 13 convs + 5 pools + flatten + 3 fc = 22 layers, like VGG-16.
        assert model.num_layers == 22
        assert model.layer_names[-3:] == ["fc6", "fc7", "fc8"]

    def test_fc_holds_most_weights(self, rng):
        """The property behind the 15-1 configuration."""
        model = build_vgg(scale=0.5, rng=rng)
        graph = model.layer_graph(np.zeros((1, 3, 32, 32)))
        fc_params = sum(l.param_count for l in graph if l.name.startswith("fc"))
        assert fc_params > 0.4 * graph.total_params

    def test_conv_activations_dominate(self, rng):
        model = build_vgg(scale=0.5, rng=rng)
        graph = model.layer_graph(np.zeros((1, 3, 32, 32)))
        conv1 = graph.layers[0]
        fc = graph.layers[-1]
        assert conv1.output_elements > 50 * fc.output_elements

    def test_small_image_rejected(self, rng):
        with pytest.raises(ValueError):
            build_vgg(image_size=16, rng=rng)


class TestResNet:
    def test_forward_shape(self, rng):
        model = build_resnet(blocks_per_group=1, base_channels=8, rng=rng)
        assert model(rng.standard_normal((2, 3, 16, 16))).shape == (2, 10)

    def test_residual_changes_with_depth(self, rng):
        deep = build_resnet(blocks_per_group=2, base_channels=8, rng=rng)
        assert deep.num_layers == 1 + 6 + 2  # stem + blocks + pool + fc

    def test_compact_weights_large_activations(self, rng):
        """ResNet's signature: activations dwarf weights early on."""
        model = build_resnet(blocks_per_group=1, base_channels=8, rng=rng)
        graph = model.layer_graph(np.zeros((1, 3, 32, 32)))
        stem = graph.layers[0]
        assert stem.output_elements > stem.param_count

    def test_trains_one_step(self, rng):
        from repro.nn import CrossEntropyLoss
        from repro.optim import SGD

        model = build_resnet(blocks_per_group=1, base_channels=4, rng=rng)
        opt = SGD(model.parameters(), lr=0.01)
        x = rng.standard_normal((4, 3, 16, 16))
        y = rng.integers(0, 10, 4)
        loss = CrossEntropyLoss()(model(x), y)
        loss.backward()
        opt.step()
        assert np.isfinite(loss.item())


class TestAlexNet:
    def test_forward_shape(self, rng):
        model = build_alexnet(scale=0.25, image_size=16, num_classes=5, rng=rng)
        assert model(rng.standard_normal((2, 3, 16, 16))).shape == (2, 5)

    def test_structure(self, rng):
        model = build_alexnet(scale=0.25, image_size=16, rng=rng)
        assert model.num_layers == 12
        assert "conv5" in model.layer_names


class TestSequenceModels:
    def test_gnmt_shapes(self, rng):
        model = build_gnmt(num_lstm_layers=4, vocab_size=12, hidden_size=6, rng=rng)
        tokens = rng.integers(0, 12, (3, 5))
        out = model(tokens)
        assert out.shape == (3, 5, 12)

    def test_gnmt_layer_count(self, rng):
        model = build_gnmt(num_lstm_layers=8, vocab_size=12, hidden_size=6, rng=rng)
        assert model.num_layers == 10  # embed + 8 lstm + proj
        assert model.input_kind == "int"

    def test_gnmt16_deeper(self, rng):
        model = build_gnmt(num_lstm_layers=16, vocab_size=8, hidden_size=4, rng=rng)
        assert model.num_layers == 18

    def test_awd_lm_shapes(self, rng):
        model = build_awd_lm(vocab_size=16, embed_size=6, hidden_size=8,
                             num_lstm_layers=3, rng=rng)
        out = model(rng.integers(0, 16, (2, 7)))
        assert out.shape == (2, 7, 16)

    def test_awd_lm_weight_heavy(self, rng):
        """LSTM/decoder weights dominate activations (the paper's 0.41GB)."""
        model = build_awd_lm(vocab_size=64, embed_size=24, hidden_size=32, rng=rng)
        graph = model.layer_graph(np.zeros((1, 5), dtype=np.int64))
        lstm_params = sum(l.param_count for l in graph if l.kind == "lstm")
        assert lstm_params > 0.4 * graph.total_params

    def test_s2vt_shapes(self, rng):
        model = build_s2vt(feature_size=10, hidden_size=6, vocab_size=9, rng=rng)
        out = model(rng.standard_normal((2, 4, 10)))
        assert out.shape == (2, 4, 9)

    def test_s2vt_layer_count(self, rng):
        assert build_s2vt(rng=rng).num_layers == 4


class TestLayerGraphAPI:
    def test_index_of(self, rng):
        graph = build_mlp(rng=rng).layer_graph(np.zeros((1, 16)))
        assert graph.index_of("fc1") == 0
        with pytest.raises(KeyError):
            graph.index_of("nope")

    def test_slice(self, rng):
        graph = build_mlp(rng=rng).layer_graph(np.zeros((1, 16)))
        sub = graph[1:3]
        assert len(sub) == 2

    def test_stage_names(self, rng):
        graph = build_mlp(rng=rng).layer_graph(np.zeros((1, 16)))
        names = graph.stage_names([(0, 2), (2, 3)])
        assert names == ["fc1..fc2", "head..head"]

    def test_kinds_classified(self, rng):
        model = build_vgg(scale=0.25, rng=rng)
        graph = model.layer_graph(np.zeros((1, 3, 32, 32)))
        kinds = {l.name: l.kind for l in graph}
        assert kinds["conv1_1"] == "conv"
        assert kinds["pool1"] == "pool"
        assert kinds["fc8"] == "fc"
        assert kinds["flatten"] == "flatten"

    def test_builder_returns_module(self, rng):
        graph = build_mlp(rng=rng).layer_graph(np.zeros((1, 16)))
        module = graph.layers[0].build()
        assert module is not None
