"""Layer library: behaviour, registration, serialization, modes."""

import numpy as np
import pytest

from repro.autodiff import Tensor, gradcheck
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    CrossEntropyLoss,
    Dropout,
    Embedding,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    MSELoss,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)


class TestModule:
    def test_parameter_registration(self, rng):
        layer = Linear(4, 3, rng=rng)
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_parameter_names(self, rng):
        seq = Sequential(Linear(4, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng))
        names = [n for n, _ in seq.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_num_parameters(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_parameter_bytes(self, rng):
        layer = Linear(4, 3, rng=rng, bias=False)
        assert layer.parameter_bytes() == 12 * 8  # float64

    def test_state_dict_roundtrip(self, rng):
        a = Linear(4, 3, rng=rng)
        b = Linear(4, 3, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_is_deep_copy(self, rng):
        layer = Linear(2, 2, rng=rng)
        state = layer.state_dict()
        state["weight"][0, 0] = 123.0
        assert layer.weight.data[0, 0] != 123.0

    def test_load_state_dict_shape_mismatch(self, rng):
        a, b = Linear(4, 3, rng=rng), Linear(4, 2, rng=rng)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_load_state_dict_unknown_key(self, rng):
        layer = Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({"nope": np.zeros(1)})

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Dropout(0.5), Sequential(Dropout(0.5)))
        seq.eval()
        assert all(not m.training for _, m in seq.named_modules())
        seq.train()
        assert all(m.training for _, m in seq.named_modules())

    def test_zero_grad(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.standard_normal((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestSequential:
    def test_len_iter_getitem(self, rng):
        seq = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)
        assert len(list(seq)) == 3

    def test_slice_shares_parameters(self, rng):
        seq = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        head = seq[:1]
        assert head[0].weight is seq[0].weight

    def test_append(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng))
        seq.append(ReLU())
        assert len(seq) == 2

    def test_forward_chains(self, rng):
        seq = Sequential(Linear(3, 3, rng=rng), ReLU())
        out = seq(Tensor(rng.standard_normal((2, 3))))
        assert out.shape == (2, 3)
        assert (out.data >= 0).all()


class TestLinear:
    def test_output_shape(self, rng):
        assert Linear(5, 7, rng=rng)(Tensor(rng.standard_normal((3, 5)))).shape == (3, 7)

    def test_gradcheck(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        assert gradcheck(lambda x: (layer(x) ** 2).sum(), [x])

    def test_sequence_input(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.standard_normal((4, 5, 3))))
        assert out.shape == (4, 5, 2)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1


class TestConvLayer:
    def test_shape(self, rng):
        layer = Conv2d(3, 8, 3, padding=1, rng=rng)
        assert layer(Tensor(rng.standard_normal((2, 3, 8, 8)))).shape == (2, 8, 8, 8)

    def test_downsampling(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        assert layer(Tensor(rng.standard_normal((2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_param_count(self, rng):
        layer = Conv2d(3, 8, 3, rng=rng)
        assert layer.num_parameters() == 8 * 3 * 9 + 8


class TestBatchNorm:
    def test_normalizes_training_batch(self, rng):
        bn = BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 3, 3)) * 5 + 2)
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((16, 2, 4, 4)) + 3.0)
        bn(x)
        assert (bn._buffers["running_mean"] > 0).all()

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((16, 2, 4, 4)) + 3.0)
        for _ in range(50):
            bn(x)
        bn.eval()
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=0.2)

    def test_gradcheck(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 2, 2)), requires_grad=True)
        assert gradcheck(lambda x: (bn(x) ** 2).sum(), [x], atol=1e-4)

    def test_state_dict_includes_buffers(self):
        bn = BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state


class TestEmbeddingAndMisc:
    def test_embedding_shape(self, rng):
        emb = Embedding(10, 4, rng=rng)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_embedding_accepts_tensor_indices(self, rng):
        emb = Embedding(10, 4, rng=rng)
        idx = Tensor(np.array([1, 2, 3]))
        assert emb(idx).shape == (3, 4)

    def test_flatten(self, rng):
        assert Flatten()(Tensor(rng.standard_normal((2, 3, 4)))).shape == (2, 12)

    def test_identity(self, rng):
        x = Tensor(rng.standard_normal(3))
        assert Identity()(x) is x

    def test_activations(self, rng):
        x = Tensor(rng.standard_normal((2, 3)))
        assert (Sigmoid()(x).data > 0).all()
        assert (np.abs(Tanh()(x).data) <= 1).all()

    def test_dropout_respects_eval(self, rng):
        drop = Dropout(0.9, rng=rng)
        drop.eval()
        x = Tensor(np.ones(100))
        np.testing.assert_array_equal(drop(x).data, np.ones(100))

    def test_maxpool_module(self, rng):
        pool = MaxPool2d(2)
        assert pool(Tensor(rng.standard_normal((1, 2, 4, 4)))).shape == (1, 2, 2, 2)


class TestLosses:
    def test_cross_entropy_module(self, rng):
        loss = CrossEntropyLoss()(Tensor(rng.standard_normal((4, 3))), np.array([0, 1, 2, 0]))
        assert loss.item() > 0

    def test_cross_entropy_accepts_tensor_targets(self, rng):
        targets = Tensor(np.array([0, 1]))
        loss = CrossEntropyLoss()(Tensor(rng.standard_normal((2, 3))), targets)
        assert np.isfinite(loss.item())

    def test_mse_module(self, rng):
        pred = Tensor(rng.standard_normal((3, 2)))
        assert MSELoss()(pred, pred.data).item() < 1e-12
