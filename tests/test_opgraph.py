"""Operator-graph linearization and cut accounting (§4)."""

import pytest

from repro.core.opgraph import OperatorGraph, residual_block_graph
from repro.core.partition import PipeDreamOptimizer
from repro.core.topology import make_cluster


def diamond() -> OperatorGraph:
    """a -> (b, c) -> d"""
    graph = OperatorGraph("diamond")
    graph.add("a", 1.0, 100)
    graph.add("b", 1.0, 10, inputs=["a"])
    graph.add("c", 1.0, 20, inputs=["a"])
    graph.add("d", 1.0, 5, inputs=["b", "c"])
    return graph


class TestConstruction:
    def test_duplicate_rejected(self):
        graph = OperatorGraph()
        graph.add("a", 1.0, 1)
        with pytest.raises(ValueError):
            graph.add("a", 1.0, 1)

    def test_unknown_input_rejected(self):
        graph = OperatorGraph()
        with pytest.raises(KeyError):
            graph.add("b", 1.0, 1, inputs=["nope"])

    def test_edges_tracked(self):
        graph = diamond()
        assert graph.successors("a") == ["b", "c"]
        assert graph.predecessors("d") == ["b", "c"]
        assert "a" in graph and len(graph) == 4


class TestLinearize:
    def test_respects_dependencies(self):
        graph = diamond()
        order = graph.linearize()
        graph.validate_order(order)
        assert order[0] == "a" and order[-1] == "d"

    def test_bfs_layering(self):
        order = diamond().linearize()
        assert order == ["a", "b", "c", "d"]

    def test_cycle_detected(self):
        graph = OperatorGraph()
        graph.add("a", 1.0, 1)
        graph.add("b", 1.0, 1, inputs=["a"])
        # Manually inject a back edge to form a cycle.
        graph._predecessors["a"].append("b")
        graph._successors["b"].append("a")
        with pytest.raises(ValueError):
            graph.linearize()

    def test_validate_rejects_bad_order(self):
        graph = diamond()
        with pytest.raises(ValueError):
            graph.validate_order(["d", "a", "b", "c"])
        with pytest.raises(ValueError):
            graph.validate_order(["a", "b", "c"])  # missing node


class TestCutAccounting:
    def test_single_edge_cut(self):
        graph = diamond()
        order = graph.linearize()
        # Cut after "a": only a's output (100) crosses.
        assert graph.cut_bytes(order, 0) == 100

    def test_skip_connection_inflates_cut(self):
        graph = diamond()
        order = graph.linearize()  # a b c d
        # Cut after "b": a's output still needed by c, plus b's output.
        assert graph.cut_bytes(order, 1) == 100 + 10

    def test_output_counted_once_for_multiple_consumers(self):
        graph = OperatorGraph()
        graph.add("a", 1.0, 100)
        graph.add("b", 1.0, 1, inputs=["a"])
        graph.add("c", 1.0, 1, inputs=["a"])
        order = graph.linearize()
        assert graph.cut_bytes(order, 0) == 100  # not 200


class TestChainProfile:
    def test_profile_boundaries_match_cuts(self):
        graph = diamond()
        profile = graph.chain_profile()
        order = graph.linearize()
        for i in range(len(order) - 1):
            assert profile.activation_bytes(i) == graph.cut_bytes(order, i)

    def test_partitioner_consumes_dag_models(self):
        graph = residual_block_graph(num_blocks=3)
        profile = graph.chain_profile(batch_size=4)
        topo = make_cluster("t", 4, 1, 1e6, 1e6)
        plan = PipeDreamOptimizer(profile, topo).solve()
        assert sum(s.replicas for s in plan.stages) == 4

    def test_residual_cuts_prefer_block_boundaries(self):
        """Inside a block, the skip edge doubles the cut traffic, so the
        cheapest places to split are between blocks."""
        graph = residual_block_graph(num_blocks=2, tensor_bytes=1000)
        order = graph.linearize()
        position = {name: i for i, name in enumerate(order)}
        inside = graph.cut_bytes(order, position["block1_conv1"])
        between = graph.cut_bytes(order, position["block1_add"])
        assert inside > between

    def test_custom_order_used(self):
        graph = diamond()
        profile = graph.chain_profile(order=["a", "c", "b", "d"])
        assert [l.name for l in profile] == ["a", "c", "b", "d"]
