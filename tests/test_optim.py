"""Optimizers and schedulers."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Linear
from repro.nn.module import Parameter
from repro.optim import LARS, SGD, Adam, StepLR, WarmupLR
from repro.optim.optimizer import Optimizer


def make_param(values):
    return Parameter(np.asarray(values, dtype=np.float64))


class TestSGD:
    def test_basic_update(self):
        p = make_param([1.0, 2.0])
        opt = SGD([p], lr=0.5)
        p.grad = np.array([1.0, -1.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.5, 2.5])

    def test_explicit_grads_override(self):
        p = make_param([1.0])
        opt = SGD([p], lr=1.0)
        p.grad = np.array([100.0])
        opt.step([np.array([1.0])])
        np.testing.assert_allclose(p.data, [0.0])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        for _ in range(2):
            opt.step([np.array([1.0])])
        # v1 = 1, v2 = 1.9 -> total = 2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = make_param([2.0])
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.step([np.array([0.0])])
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 1.0])

    def test_none_grad_skipped(self):
        p = make_param([1.0])
        SGD([p], lr=1.0).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_in_place_mutates_array(self):
        p = make_param([1.0])
        view = p.data
        opt = SGD([p], lr=1.0, in_place=True)
        opt.step([np.array([1.0])])
        np.testing.assert_allclose(view, [0.0])  # same array mutated

    def test_rebinding_preserves_old_array(self):
        p = make_param([1.0])
        view = p.data
        SGD([p], lr=1.0).step([np.array([1.0])])
        np.testing.assert_allclose(view, [1.0])  # old array untouched

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_magnitude(self):
        p = make_param([0.0])
        opt = Adam([p], lr=0.1)
        opt.step([np.array([3.0])])
        # Bias correction makes the first step ~= lr regardless of grad scale.
        np.testing.assert_allclose(p.data, [-0.1], rtol=1e-5)

    def test_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            opt.step([2 * p.data])  # grad of x^2
        assert abs(p.data[0]) < 0.1

    def test_per_param_state(self):
        p1, p2 = make_param([0.0]), make_param([0.0])
        opt = Adam([p1, p2], lr=0.1)
        opt.step([np.array([1.0]), np.array([-1.0])])
        assert p1.data[0] < 0 < p2.data[0]

    def test_weight_decay(self):
        p = make_param([1.0])
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        opt.step([np.array([0.0])])
        assert p.data[0] < 1.0


class TestLARS:
    def test_trust_ratio_scales_update(self):
        p = make_param([1000.0])
        opt = LARS([p], lr=1.0, momentum=0.0, trust_coefficient=0.001)
        opt.step([np.array([1.0])])
        # local_lr = 0.001 * 1000 / 1 = 1 -> step = lr * 1 * grad = 1
        np.testing.assert_allclose(p.data, [999.0])

    def test_zero_weight_norm_falls_back(self):
        p = make_param([0.0])
        opt = LARS([p], lr=0.1, momentum=0.0)
        opt.step([np.array([1.0])])
        np.testing.assert_allclose(p.data, [-0.1])

    def test_momentum(self):
        p = make_param([10.0])
        opt = LARS([p], lr=1.0, momentum=0.9)
        opt.step([np.array([1.0])])
        first = 10.0 - p.data[0]
        opt.step([np.array([1.0])])
        second = (10.0 - first) - p.data[0]
        assert second > first  # velocity builds up

    def test_trains_linear_model(self, rng):
        layer = Linear(4, 2, rng=rng)
        opt = LARS(layer.parameters(), lr=0.1, momentum=0.9)
        x = Tensor(rng.standard_normal((16, 4)))
        target = rng.standard_normal((16, 2))
        first_loss = None
        for _ in range(50):
            layer.zero_grad()
            diff = layer(x) - Tensor(target)
            loss = (diff * diff).mean()
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first_loss


class TestSchedulers:
    def test_step_lr(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01])

    def test_warmup_lr(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0)
        sched = WarmupLR(opt, warmup_epochs=4)
        assert opt.lr == 0.25
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [0.5, 0.75, 1.0, 1.0, 1.0])

    def test_step_count(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0)
        opt.step([np.array([0.0])])
        opt.step([np.array([0.0])])
        assert opt.step_count == 2
