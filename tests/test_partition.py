"""The §3.1 partitioning optimizer: optimality, structure, accounting."""

import math

import pytest

from repro.core.partition import (
    PipeDreamOptimizer,
    Stage,
    allreduce_bytes_per_worker,
    brute_force_partition,
    communication_bytes_per_minibatch,
    data_parallel_bytes_per_minibatch,
    evaluate_partition,
)
from repro.core.profile import LayerProfile, ModelProfile
from repro.core.topology import make_cluster


class TestStage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Stage(2, 2, 1)
        with pytest.raises(ValueError):
            Stage(0, 1, 0)

    def test_num_layers(self):
        assert Stage(1, 4, 2).num_layers == 3


class TestOptimalityVsBruteForce:
    def test_toy_profile(self, toy_profile, flat4):
        result = PipeDreamOptimizer(toy_profile, flat4).solve()
        _, best = brute_force_partition(toy_profile, flat4)
        assert result.slowest_stage_time == pytest.approx(best)

    def test_compute_dominated_balances_stages(self, flat4):
        # Zero communication: the best plan maximizes parallel compute.
        layers = [LayerProfile(f"l{i}", 1.0, 0, 0) for i in range(8)]
        profile = ModelProfile("flat", layers, batch_size=1)
        result = PipeDreamOptimizer(profile, flat4).solve()
        _, best = brute_force_partition(profile, flat4)
        assert result.slowest_stage_time == pytest.approx(best)
        # With zero comm bytes, ideal parallelism reaches total/4.
        assert result.slowest_stage_time == pytest.approx(8.0 / 4)

    def test_comm_dominated_prefers_fewer_boundaries(self):
        # Gigantic activations make any split terrible; tiny weights make
        # replication free: expect pure data parallelism.
        layers = [LayerProfile(f"l{i}", 1.0, 10**9, 1) for i in range(5)]
        profile = ModelProfile("fat-acts", layers, batch_size=1)
        topo = make_cluster("t", 4, 1, 100.0, 100.0)
        result = PipeDreamOptimizer(profile, topo).solve()
        assert result.is_data_parallel

    def test_heavy_weights_prefer_straight_pipeline(self):
        # Huge weights make replication terrible; tiny activations make
        # pipelining free: expect a straight pipeline (AWD-LM's case).
        layers = [LayerProfile(f"l{i}", 1.0, 1, 10**9) for i in range(4)]
        profile = ModelProfile("fat-weights", layers, batch_size=1)
        topo = make_cluster("t", 4, 1, 100.0, 100.0)
        result = PipeDreamOptimizer(profile, topo).solve()
        assert result.is_straight
        assert result.config_string == "straight"

    def test_random_profiles_match_brute_force(self, flat4):
        import numpy as np

        rng = np.random.default_rng(42)
        for trial in range(8):
            n = int(rng.integers(2, 6))
            layers = [
                LayerProfile(
                    f"l{i}",
                    float(rng.uniform(0.5, 4.0)),
                    int(rng.integers(1, 2000)),
                    int(rng.integers(1, 2000)),
                )
                for i in range(n)
            ]
            profile = ModelProfile(f"rand{trial}", layers, batch_size=1)
            result = PipeDreamOptimizer(profile, flat4).solve()
            _, best = brute_force_partition(profile, flat4)
            assert result.slowest_stage_time == pytest.approx(best), f"trial {trial}"


class TestPartitionStructure:
    def test_stages_cover_model_contiguously(self, toy_profile, flat4):
        result = PipeDreamOptimizer(toy_profile, flat4).solve()
        assert result.stages[0].start == 0
        assert result.stages[-1].stop == len(toy_profile)
        for a, b in zip(result.stages, result.stages[1:]):
            assert a.stop == b.start

    def test_workers_fully_allocated(self, toy_profile, flat4):
        result = PipeDreamOptimizer(toy_profile, flat4).solve()
        assert sum(s.replicas for s in result.stages) == 4

    def test_two_level_topology(self, toy_profile, two_level):
        result = PipeDreamOptimizer(toy_profile, two_level).solve()
        assert sum(s.replicas for s in result.stages) == 4
        assert result.stages[-1].stop == len(toy_profile)

    def test_subset_worker_count(self, toy_profile, two_level):
        result = PipeDreamOptimizer(toy_profile, two_level).solve(num_workers=2)
        assert result.num_workers == 2
        assert sum(s.replicas for s in result.stages) == 2

    def test_straight_only_mode(self, toy_profile, flat4):
        result = PipeDreamOptimizer(toy_profile, flat4, allow_replication=False).solve()
        assert all(s.replicas == 1 for s in result.stages)

    def test_single_worker_is_single_stage(self, toy_profile, flat4):
        result = PipeDreamOptimizer(toy_profile, flat4).solve(num_workers=1)
        assert len(result.stages) == 1
        assert result.slowest_stage_time == pytest.approx(toy_profile.total_compute_time)

    def test_solver_is_fast(self, toy_profile, flat4):
        result = PipeDreamOptimizer(toy_profile, flat4).solve()
        assert result.solve_seconds < 8.0  # the paper's bound (§5.5)


class TestPartitionResultProperties:
    def test_config_string_dp(self, flat4):
        layers = [LayerProfile("l", 1.0, 10**9, 1)]
        profile = ModelProfile("m", layers, batch_size=1)
        result = PipeDreamOptimizer(profile, flat4).solve()
        assert result.config_string == "4"
        assert result.is_data_parallel

    def test_noam_straight(self):
        stages = [Stage(i, i + 1, 1) for i in range(4)]
        result_like = type("R", (), {})
        from repro.core.schedule import compute_noam

        assert compute_noam(stages) == 4

    def test_noam_replicated_input(self):
        from repro.core.schedule import compute_noam

        assert compute_noam([Stage(0, 2, 3), Stage(2, 3, 1)]) == 2

    def test_predicted_throughput(self, toy_profile, flat4):
        result = PipeDreamOptimizer(toy_profile, flat4).solve()
        assert result.predicted_throughput == pytest.approx(1.0 / result.slowest_stage_time)
        assert result.predicted_epoch_time(10) == pytest.approx(10 * result.slowest_stage_time)


class TestMemoryLimit:
    def test_tight_limit_changes_plan(self, flat4):
        # One enormous-weight layer cannot share a stage under a tight cap.
        layers = [
            LayerProfile("small", 1.0, 10, 10),
            LayerProfile("big", 1.0, 10, 10_000),
            LayerProfile("small2", 1.0, 10, 10),
        ]
        profile = ModelProfile("m", layers, batch_size=1)
        unconstrained = PipeDreamOptimizer(profile, flat4).solve()
        constrained = PipeDreamOptimizer(
            profile, flat4, memory_limit_bytes=4 * 11_000
        ).solve()
        assert constrained.slowest_stage_time >= unconstrained.slowest_stage_time

    def test_infeasible_limit_raises(self, flat4, toy_profile):
        with pytest.raises(RuntimeError):
            PipeDreamOptimizer(toy_profile, flat4, memory_limit_bytes=1.0).solve()


class TestCostAccounting:
    def test_allreduce_bytes(self):
        assert allreduce_bytes_per_worker(100, 1) == 0.0
        assert allreduce_bytes_per_worker(100, 4) == pytest.approx(150.0)

    def test_evaluate_partition_single_stage(self, toy_profile):
        cost = evaluate_partition(toy_profile, [Stage(0, 5, 1)], bandwidth=100.0)
        assert cost == pytest.approx(toy_profile.total_compute_time)

    def test_evaluate_partition_includes_boundary(self, toy_profile):
        stages = [Stage(0, 3, 1), Stage(3, 5, 1)]
        cost = evaluate_partition(toy_profile, stages, bandwidth=1.0)
        # Boundary = 2 * a_2 / B = 1200 dominates.
        assert cost == pytest.approx(1200.0)

    def test_evaluate_partition_checks_coverage(self, toy_profile):
        with pytest.raises(ValueError):
            evaluate_partition(toy_profile, [Stage(0, 3, 1)], bandwidth=1.0)
        with pytest.raises(ValueError):
            evaluate_partition(
                toy_profile, [Stage(0, 3, 1), Stage(4, 5, 1)], bandwidth=1.0
            )

    def test_communication_volume_dp_vs_pipeline(self, toy_profile):
        dp = data_parallel_bytes_per_minibatch(toy_profile, 4)
        pipeline = communication_bytes_per_minibatch(
            toy_profile, [Stage(0, 3, 3), Stage(3, 5, 1)]
        )
        # DP synchronizes all weights once per round of 4 minibatches; the
        # pipeline syncs only the conv weights over its 3 replicas and ships
        # one boundary activation per minibatch.
        assert dp == pytest.approx(2 * 3 * 9600 / 4)
        assert pipeline == pytest.approx(2 * 2 * 600 / 3 + 2 * 600)
        assert pipeline < dp

    def test_dp_volume_single_worker_zero(self, toy_profile):
        assert data_parallel_bytes_per_minibatch(toy_profile, 1) == 0.0
