"""The vectorized plan evaluator is an optimization, not a semantic change.

``evaluate_partition_details(vectorize=True)`` computes every stage with
numpy arithmetic over cached prefix tables; ``vectorize=False`` is the
scalar reference twin that walks the :mod:`repro.sim.network` placement
and all_reduce model stage by stage.  Both paths evaluate the exact same
float expressions, so this file asserts *bitwise* equality — no approx —
over every paper model with straight and replicated plans, plus a
hypothesis fuzz over random profiles, topologies, and plans.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    PartitionEvaluation,
    PipeDreamOptimizer,
    Stage,
    evaluate_partition_details,
    evaluate_partition_on_topology,
)
from repro.core.profile import LayerProfile, ModelProfile
from repro.core.topology import cluster_a, cluster_b, cluster_c, make_cluster
from repro.profiler import analytic_profile
from repro.sim.strategies import balanced_straight_stages

PAPER_MODELS = ("vgg16", "resnet50", "alexnet", "gnmt16", "gnmt8",
                "awd-lm", "s2vt", "mask-rcnn", "ssd")

TOPO_A = cluster_a(4)


def assert_evaluations_identical(profile, stages, topology):
    """Vectorized and scalar evaluations must match bitwise."""
    vec = evaluate_partition_details(profile, stages, topology,
                                     vectorize=True)
    ref = evaluate_partition_details(profile, stages, topology,
                                     vectorize=False)
    assert isinstance(vec, PartitionEvaluation)
    assert vec.stage_times == ref.stage_times
    assert vec.boundary_times == ref.boundary_times
    assert vec.bottleneck_time == ref.bottleneck_time
    assert vec.bottleneck_stage == ref.bottleneck_stage
    # The scalar convenience wrapper agrees with the details object.
    assert evaluate_partition_on_topology(
        profile, stages, topology, vectorize=True) == vec.bottleneck_time
    assert evaluate_partition_on_topology(
        profile, stages, topology, vectorize=False) == ref.bottleneck_time
    return vec


def replicated_plan(profile, total_workers):
    """A handcrafted two-stage plan with both stages replicated."""
    mid = max(1, len(profile) // 2)
    front = max(2, (3 * total_workers) // 4)
    back = total_workers - front
    if back < 1:
        front, back = total_workers - 1, 1
    return [Stage(0, mid, front), Stage(mid, len(profile), back)]


@pytest.mark.parametrize("model", PAPER_MODELS)
def test_straight_plan_matches(model):
    profile = analytic_profile(model)
    stages = balanced_straight_stages(profile, 4)
    assert_evaluations_identical(profile, stages, TOPO_A)


@pytest.mark.parametrize("model", PAPER_MODELS)
def test_replicated_plan_matches(model):
    profile = analytic_profile(model)
    assert_evaluations_identical(profile, replicated_plan(profile, 16),
                                 TOPO_A)


@pytest.mark.parametrize("model", PAPER_MODELS)
def test_solved_plan_matches(model):
    """The optimizer's own chosen plan evaluates identically on each path,
    and both evaluator flavors lead the DP to the same chosen plan."""
    profile = analytic_profile(model)
    vec_plan = PipeDreamOptimizer(profile, TOPO_A, vectorize=True).solve()
    ref_plan = PipeDreamOptimizer(profile, TOPO_A, vectorize=False).solve()
    assert vec_plan.stages == ref_plan.stages
    assert vec_plan.slowest_stage_time == ref_plan.slowest_stage_time
    assert vec_plan.config_string == ref_plan.config_string
    assert_evaluations_identical(profile, vec_plan.stages, TOPO_A)


def test_pure_data_parallel_plan_matches():
    profile = analytic_profile("resnet50")
    stages = [Stage(0, len(profile), 16)]
    details = assert_evaluations_identical(profile, stages, TOPO_A)
    assert details.boundary_times == ()
    assert details.bottleneck_stage == 0


@pytest.mark.parametrize("topo", [cluster_a(4), cluster_b(2), cluster_c(4),
                                  make_cluster("flat8", 8, 1, 40.0, 40.0)],
                         ids=lambda t: t.name)
def test_topologies_match(topo):
    """Hierarchies with different depths/efficiencies all agree bitwise."""
    profile = analytic_profile("gnmt8")
    total = topo.total_workers
    stages = balanced_straight_stages(profile, min(4, total))
    assert_evaluations_identical(profile, stages, topo)
    if total >= 4:
        assert_evaluations_identical(profile, replicated_plan(profile, total),
                                     topo)


def test_bottleneck_stage_is_argmax():
    profile = analytic_profile("vgg16")
    details = evaluate_partition_details(
        profile, replicated_plan(profile, 16), TOPO_A)
    assert details.stage_times[details.bottleneck_stage] == max(
        details.stage_times)


# ----------------------------------------------------------------------
# Hypothesis fuzz: random profiles × random topologies × random plans.
# ----------------------------------------------------------------------

layer_specs = st.lists(
    st.tuples(
        st.floats(0.05, 10.0, allow_nan=False),  # compute time
        st.integers(0, 100_000),                 # activation bytes
        st.integers(0, 1_000_000),               # weight bytes
        st.sampled_from(["conv", "fc", "lstm", "embedding"]),
    ),
    min_size=2,
    max_size=7,
)


def build_profile(spec):
    layers = [LayerProfile(f"l{i}", c, a, w, kind=k)
              for i, (c, a, w, k) in enumerate(spec)]
    return ModelProfile("fuzz", layers, batch_size=1)


class TestEvaluatorFuzz:
    @given(
        spec=layer_specs,
        gpus=st.integers(2, 4),
        servers=st.integers(1, 3),
        intra=st.floats(1.0, 1000.0, allow_nan=False),
        inter=st.floats(0.5, 100.0, allow_nan=False),
        intra_eff=st.floats(0.05, 1.0, allow_nan=False),
        inter_eff=st.floats(0.05, 1.0, allow_nan=False),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_plan_matches(self, spec, gpus, servers, intra, inter,
                                 intra_eff, inter_eff, data):
        profile = build_profile(spec)
        topo = make_cluster("fuzz", gpus, servers, intra, inter,
                            intra_allreduce_efficiency=intra_eff,
                            inter_allreduce_efficiency=inter_eff)
        total = topo.total_workers
        num_layers = len(profile)
        num_stages = data.draw(
            st.integers(1, min(num_layers, total)), label="num_stages")
        cuts = sorted(data.draw(
            st.lists(st.integers(1, num_layers - 1), min_size=num_stages - 1,
                     max_size=num_stages - 1, unique=True),
            label="cuts")) if num_stages > 1 else []
        bounds = [0] + cuts + [num_layers]
        # Replicas per stage, packed so the total never exceeds the
        # cluster (the evaluator's contract: contiguous in-range groups).
        budget = total - num_stages
        replicas = []
        for _ in range(num_stages):
            r = data.draw(st.integers(1, 1 + budget), label="replicas")
            budget -= r - 1
            replicas.append(r)
        stages = [Stage(b, e, r)
                  for b, e, r in zip(bounds, bounds[1:], replicas)]
        assert_evaluations_identical(profile, stages, topo)
