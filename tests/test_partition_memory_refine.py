"""Memory-faithful planning: one §3.3 formula, three consumers.

Every memory decision the planner makes goes through the shared kernel
``repro.sim.memory.stage_memory_cost``: the phase-1 ``_memory_ok`` bound
(an optimistic per-layer relaxation in refine mode, a conservative
worst-case in bound-only mode), the refined suffix DP's feasibility mask
(the kernel at the *exact* warmup depth ``ceil(suffix / replicas)``), and
the simulator's ``pipeline_memory_footprint`` (the same kernel at the
same depth).  The load-bearing invariant is therefore structural:

    bound-admitted  ⊇  refined-admitted  =  footprint-feasible

so phase-1 pruning can never discard a plan the simulator admits.

This file covers:

* the §3.3 pinning of ``pipeline_memory_footprint`` itself, including
  the deferred (BPTT-accumulated) weight-stash split on replicated
  stages,
* scalar/vectorized bitwise identity of refined solves (differential,
  `test_partition_evaluator_equiv`-style),
* the recovery property on the memory-limited VGG-16 scenario (the perf
  workload's acceptance bar) and the regression the old boundary-
  activation bound caused (feasible plans silently pruned),
* hypothesis fuzz: the superset invariant above, refined plans always
  fit, and the refined feasible set subsumes the worst-case-bound
  feasible set.
"""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    PipeDreamOptimizer,
    Stage,
    evaluate_partition_details,
)
from repro.core.profile import LayerProfile, ModelProfile
from repro.core.schedule import warmup_count
from repro.core.topology import cluster_a, cluster_b, cluster_c, make_cluster
from repro.profiler import analytic_profile
from repro.sim.memory import pipeline_memory_footprint, stage_memory_bytes

TOPO_A = cluster_a(4)
VGG_LIMIT = 7e9  # binding for vgg16 @ 16 workers (the perf workload cap)
# The smallest cap the *conservative* bound-only mode can certify for
# vgg16 @ 16 workers is ~13.2 GB (the early conv activations at
# worst-case depth 16); 14 GB is feasible for it but still binding.
BOUND_LIMIT = 14e9


# ----------------------------------------------------------------------
# §3.3 pinning: the footprint formula is depth x (weights + acts)
# ----------------------------------------------------------------------

class TestSection33Footprint:
    def _profile(self):
        layers = [
            LayerProfile("a", 1.0, 100, 1000),
            LayerProfile("b", 1.0, 200, 2000),
            LayerProfile("c", 1.0, 300, 3000),
            LayerProfile("d", 1.0, 400, 4000),
        ]
        return ModelProfile("toy", layers, batch_size=1)

    def test_input_stage_holds_noam_versions(self):
        """Input stage: NOAM x (weights + acts); output stage: 1 x."""
        profile = self._profile()
        stages = [Stage(0, 2, 1), Stage(2, 3, 1), Stage(3, 4, 1)]
        noam = warmup_count(stages, 0)
        assert noam == 3  # straight 3-stage pipeline
        foot = pipeline_memory_footprint(profile, stages)
        assert foot[0] == noam * ((1000 + 2000) + (100 + 200))
        assert foot[1] == 2 * (3000 + 300)
        assert foot[-1] == 1 * (4000 + 400)

    def test_replicated_input_stage_depth(self):
        """Depth is ceil(downstream / replicas), not raw worker count."""
        profile = self._profile()
        stages = [Stage(0, 2, 3), Stage(2, 4, 1)]
        # 4 workers at-or-downstream of stage 0, 3 replicas -> depth 2.
        assert warmup_count(stages, 0) == 2
        foot = pipeline_memory_footprint(profile, stages)
        assert foot[0] == 2 * ((1000 + 2000) + (100 + 200))
        assert foot[1] == 1 * ((3000 + 4000) + (300 + 400))

    def test_in_flight_override(self):
        profile = self._profile()
        stages = [Stage(0, 4, 1)]
        assert pipeline_memory_footprint(profile, stages) == [
            1 * (10000 + 1000)
        ]
        assert pipeline_memory_footprint(profile, stages, in_flight=[5]) == [
            5 * (10000 + 1000)
        ]

    def test_deferred_weights_priced_per_round(self):
        """BPTT-accumulated (lstm/embedding) weights update once per
        round of ``replicas`` minibatches, so a replicated stage stashes
        only ``ceil(depth / replicas)`` versions of them — eager weights
        and activations still pay the full depth."""
        layers = [
            LayerProfile("enc", 1.0, 100, 1000, kind="lstm"),
            LayerProfile("fc", 1.0, 10, 100, kind="fc"),
        ]
        profile = ModelProfile("rnn", layers, batch_size=1)
        stages = [Stage(0, 1, 2), Stage(1, 2, 1)]
        # Stage 0: 3 workers at-or-downstream / 2 replicas -> depth 2,
        # but the lstm weights stash only ceil(2/2) = 1 version.
        assert warmup_count(stages, 0) == 2
        foot = pipeline_memory_footprint(profile, stages)
        assert foot[0] == 1000 * 1 + 100 * 2  # deferred weights + acts
        assert foot[1] == 1 * (100 + 10)
        # The same stage unreplicated stashes depth versions of everything.
        assert stage_memory_bytes(profile, 0, 1, 2, replicas=1) == \
            2 * (1000 + 100)

    def test_eager_stage_unchanged_by_deferred_split(self):
        """Non-recurrent stages are priced exactly as before the split."""
        profile = self._profile()  # kind defaults to "other"
        stages = [Stage(0, 2, 3), Stage(2, 4, 1)]
        foot = pipeline_memory_footprint(profile, stages)
        assert foot[0] == 2 * ((1000 + 2000) + (100 + 200))


# ----------------------------------------------------------------------
# Differential: refined solves are bitwise-identical across twins
# ----------------------------------------------------------------------

def assert_refined_solves_identical(profile, topology, limit, **kw):
    vec = PipeDreamOptimizer(
        profile, topology, memory_limit_bytes=limit, vectorize=True, **kw
    ).solve()
    ref = PipeDreamOptimizer(
        profile, topology, memory_limit_bytes=limit, vectorize=False, **kw
    ).solve()
    assert vec.stages == ref.stages
    assert vec.slowest_stage_time == ref.slowest_stage_time
    assert vec.memory_bytes == ref.memory_bytes
    assert vec.memory_limit_bytes == ref.memory_limit_bytes == limit
    return vec


@pytest.mark.parametrize("model", ("vgg16", "resnet50", "gnmt8", "alexnet"))
def test_refined_solve_matches_scalar(model):
    profile = analytic_profile(model)
    free = PipeDreamOptimizer(profile, TOPO_A).solve()
    # A binding-but-feasible limit: 80% of the free plan's worst worker.
    limit = 0.8 * max(pipeline_memory_footprint(profile, free.stages))
    plan = assert_refined_solves_identical(profile, TOPO_A, limit)
    assert max(plan.memory_bytes) <= limit


@pytest.mark.parametrize(
    "topo",
    [cluster_a(2), cluster_b(2), cluster_c(4),
     make_cluster("flat8", 8, 1, 40.0, 40.0)],
    ids=lambda t: t.name,
)
def test_refined_solve_matches_scalar_across_topologies(topo):
    profile = analytic_profile("vgg16")
    free = PipeDreamOptimizer(profile, topo).solve()
    limit = 0.9 * max(pipeline_memory_footprint(profile, free.stages))
    assert_refined_solves_identical(profile, topo, limit)


def test_refined_solver_is_memoized():
    profile = analytic_profile("vgg16")
    opt = PipeDreamOptimizer(profile, TOPO_A, memory_limit_bytes=VGG_LIMIT)
    first = opt.solve()
    second = opt.solve()
    assert first.stages == second.stages
    assert first.slowest_stage_time == second.slowest_stage_time


# ----------------------------------------------------------------------
# The recovery property (the perf workload's acceptance scenario)
# ----------------------------------------------------------------------

class TestVgg16Recovery:
    def test_refined_beats_worst_case_bound(self):
        """At 7 GB the (now sound) conservative bound has *no* feasible
        plan — any stage containing the ~820 MB early conv activations
        costs worker-count x (weights + activation sum) > 13 GB at
        worst-case depth — while the refined pass finds a plan that
        genuinely fits.  (The old boundary-activation bound instead
        *admitted* 14-1-1 here, whose true footprint busts the cap.)"""
        profile = analytic_profile("vgg16")
        with pytest.raises(RuntimeError):
            PipeDreamOptimizer(
                profile, TOPO_A, memory_limit_bytes=VGG_LIMIT,
                memory_refine=False,
            ).solve()
        refined = PipeDreamOptimizer(
            profile, TOPO_A, memory_limit_bytes=VGG_LIMIT
        ).solve()
        assert max(refined.memory_bytes) <= VGG_LIMIT

    def test_bound_only_plans_are_sound(self):
        """Where bound-only mode *is* feasible, its plan truly fits: the
        conservative bound is an upper bound on the simulated footprint
        (the old bound returned plans that overflowed the limit)."""
        profile = analytic_profile("vgg16")
        free = PipeDreamOptimizer(profile, TOPO_A).solve()
        plan = PipeDreamOptimizer(
            profile, TOPO_A, memory_limit_bytes=BOUND_LIMIT,
            memory_refine=False,
        ).solve()
        assert plan.stages != free.stages  # the cap is binding
        assert max(
            pipeline_memory_footprint(profile, plan.stages)
        ) <= BOUND_LIMIT

    def test_refined_result_echoes_memory_fields(self):
        profile = analytic_profile("vgg16")
        plan = PipeDreamOptimizer(
            profile, TOPO_A, memory_limit_bytes=VGG_LIMIT
        ).solve()
        assert plan.memory_limit_bytes == VGG_LIMIT
        assert len(plan.memory_bytes) == len(plan.stages)
        assert plan.memory_bytes == tuple(
            pipeline_memory_footprint(profile, plan.stages)
        )

    def test_unconstrained_result_has_footprint_no_limit(self):
        profile = analytic_profile("vgg16")
        plan = PipeDreamOptimizer(profile, TOPO_A).solve()
        assert plan.memory_limit_bytes is None
        assert plan.memory_bytes == tuple(
            pipeline_memory_footprint(profile, plan.stages)
        )

    def test_refine_off_reproduces_bound_only_behavior(self):
        profile = analytic_profile("vgg16")
        off = PipeDreamOptimizer(
            profile, TOPO_A, memory_limit_bytes=BOUND_LIMIT,
            memory_refine=False,
        ).solve()
        off_scalar = PipeDreamOptimizer(
            profile, TOPO_A, memory_limit_bytes=BOUND_LIMIT,
            memory_refine=False, vectorize=False,
        ).solve()
        assert off.stages == off_scalar.stages
        assert off.slowest_stage_time == off_scalar.slowest_stage_time

    def test_impossible_limit_raises(self):
        profile = analytic_profile("vgg16")
        with pytest.raises(RuntimeError):
            PipeDreamOptimizer(
                profile, TOPO_A, memory_limit_bytes=1.0
            ).solve()
        with pytest.raises(RuntimeError):
            PipeDreamOptimizer(
                profile, TOPO_A, memory_limit_bytes=1.0, vectorize=False
            ).solve()


# ----------------------------------------------------------------------
# Regression: the old boundary-activation bound silently pruned feasible
# plans
# ----------------------------------------------------------------------

class TestOldBoundRegression:
    """Pins a plan the old ``_memory_ok`` wrongly discarded.

    Two layers (w=50, a=10 each), two flat workers, limit 130.  The
    fully-replicated single stage has true footprint ``depth 1 x (100
    weights + 20 activations) = 120 <= 130``, but the old bound charged
    ``2 versions x (100 weights + 10 boundary activation) = 220 > 130``
    and pruned it in phase 1 — the solver then silently fell back to the
    straight pipeline and nothing failed loudly.
    """

    def _setup(self):
        layers = [
            LayerProfile("a", 1.0, 10, 50),
            LayerProfile("b", 1.0, 10, 50),
        ]
        profile = ModelProfile("toy", layers, batch_size=1)
        # Fast links so the DP plan ties the straight plan on compute and
        # the solver's prefer-fewer-stages tie-break must pick it.
        topo = make_cluster("flat2", 2, 1, 1000.0, 1000.0)
        return profile, topo

    def test_recovers_plan_old_bound_pruned(self):
        profile, topo = self._setup()
        dp_plan = [Stage(0, 2, 2)]
        assert pipeline_memory_footprint(profile, dp_plan) == [120]
        for vectorize in (True, False):
            plan = PipeDreamOptimizer(
                profile, topo, memory_limit_bytes=130.0, vectorize=vectorize
            ).solve()
            assert plan.stages == dp_plan

    def test_phase1_bound_admits_the_span(self):
        """The per-layer optimistic bound admits the span the old
        whole-span worst-case arithmetic rejected."""
        profile, topo = self._setup()
        opt = PipeDreamOptimizer(profile, topo, memory_limit_bytes=130.0)
        assert opt._memory_ok(0, 1)


# ----------------------------------------------------------------------
# PartitionEvaluation memory fields
# ----------------------------------------------------------------------

def test_evaluation_details_carry_memory():
    profile = analytic_profile("vgg16")
    stages = [Stage(0, 10, 9), Stage(10, 15, 6), Stage(15, len(profile), 1)]
    details = evaluate_partition_details(
        profile, stages, TOPO_A, memory_limit_bytes=VGG_LIMIT
    )
    assert details.memory_bytes == tuple(
        pipeline_memory_footprint(profile, stages)
    )
    assert details.memory_limit_bytes == VGG_LIMIT
    assert details.fits_memory
    tight = evaluate_partition_details(
        profile, stages, TOPO_A, memory_limit_bytes=1.0
    )
    assert not tight.fits_memory
    free = evaluate_partition_details(profile, stages, TOPO_A)
    assert free.memory_limit_bytes is None
    assert free.fits_memory  # no limit -> vacuously true


# ----------------------------------------------------------------------
# Hypothesis fuzz: refined plans fit; refined subsumes the bound
# ----------------------------------------------------------------------

layer_specs = st.lists(
    st.tuples(
        st.floats(0.05, 10.0, allow_nan=False),  # compute time
        st.integers(0, 100_000),                 # activation bytes
        st.integers(0, 1_000_000),               # weight bytes
        st.sampled_from(["conv", "fc", "lstm", "embedding"]),
    ),
    min_size=2,
    max_size=6,
)


def build_profile(spec):
    layers = [LayerProfile(f"l{i}", c, a, w, kind=k)
              for i, (c, a, w, k) in enumerate(spec)]
    return ModelProfile("fuzz", layers, batch_size=1)


def _all_plans(n, total_workers):
    """Every contiguous partition of ``n`` layers with every replica
    assignment summing to ``total_workers`` (the brute-force plan space)."""

    def spans(start):
        if start == n:
            yield []
            return
        for stop in range(start + 1, n + 1):
            for rest in spans(stop):
                yield [(start, stop)] + rest

    def replicas(k, total):
        if k == 1:
            yield [total]
            return
        for r in range(1, total - k + 2):
            for rest in replicas(k - 1, total - r):
                yield [r] + rest

    for layout in spans(0):
        if len(layout) > total_workers:
            continue
        for reps in replicas(len(layout), total_workers):
            yield [Stage(a, b, r) for (a, b), r in zip(layout, reps)]


class TestSupersetInvariant:
    """The acceptance invariant, checked against brute-force enumeration:

        bound-admitted  ⊇  refined-admitted  =  footprint-feasible

    For *every* plan in the plan space (not just the ones the DP emits):
    if its simulated footprint fits, then (a) the refined mask — the
    shared kernel at depth ``ceil(suffix / replicas)`` — admits every
    stage with exactly the footprint's numbers, and (b) the phase-1 bound
    admits every stage span, so phase-1 pruning cannot have discarded it.
    The conservative bound-only mode is checked in the other direction:
    a plan whose every span it admits never overflows the limit.
    """

    @staticmethod
    def check_invariant(profile, workers, limit_scale):
        topo = make_cluster("fuzz", workers, 1, 40.0, 40.0)
        model_bytes = sum(
            l.weight_bytes + l.activation_bytes for l in profile.layers
        )
        limit = max(1.0, limit_scale * model_bytes)
        refine_opt = PipeDreamOptimizer(
            profile, topo, memory_limit_bytes=limit
        )
        bound_opt = PipeDreamOptimizer(
            profile, topo, memory_limit_bytes=limit, memory_refine=False
        )
        n = len(profile)
        for stages in _all_plans(n, workers):
            foot = pipeline_memory_footprint(profile, stages)
            suffix = [sum(s.replicas for s in stages[i:])
                      for i in range(len(stages))]
            for s, stage in enumerate(stages):
                # refined-admitted = footprint-feasible: the suffix DP's
                # exact depth is the simulator's warmup depth, so the
                # mask value IS the footprint value.
                depth = -(-suffix[s] // stage.replicas)
                assert depth == warmup_count(stages, s)
                assert stage_memory_bytes(
                    profile, stage.start, stage.stop, depth, stage.replicas
                ) == foot[s]
            if max(foot) <= limit:
                # bound ⊇ footprint-feasible: phase 1 admits every span.
                for stage in stages:
                    assert refine_opt._memory_ok(stage.start, stage.stop - 1)
            if all(bound_opt._memory_ok(st_.start, st_.stop - 1)
                   for st_ in stages):
                # Conservative mode is sound: what it certifies, fits.
                assert max(foot) <= limit

    @given(
        spec=layer_specs,
        workers=st.integers(2, 4),
        limit_scale=st.floats(0.05, 6.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_bound_superset_refined_superset_footprint(
        self, spec, workers, limit_scale
    ):
        self.check_invariant(build_profile(spec), workers, limit_scale)

    @given(
        spec=layer_specs,
        workers=st.integers(2, 4),
        limit_scale=st.floats(0.05, 6.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariant_holds_at_fp16_payloads(
        self, spec, workers, limit_scale
    ):
        """The same structural invariant at half-width payloads: the
        precision axis reuses the one §3.3 kernel, so nothing about the
        bound/refined/footprint relationship may change when every byte
        count is rescaled by ``with_precision(2)``."""
        profile = build_profile(spec).with_precision(2)
        assert profile.bytes_per_element == 2
        self.check_invariant(profile, workers, limit_scale)


class TestRecomputeMaskInvariant:
    """The superset invariant extends over per-stage recompute masks:

        bound-admitted (recompute-auto)  ⊇  refined-admitted  =
        footprint-feasible

    for *every* plan in the plan space under *every* recompute mask.  The
    recompute-auto phase-1 floor prices a layer at depth *boundary* sets
    (zero at the floor) plus one full set — a relaxation of both recompute
    modes — so no mask can make a footprint-feasible plan bound-pruned.
    Alongside, the kernel-level property that recompute-on never prices
    above recompute-off (the clamp) is checked at every (stage, depth).
    """

    @staticmethod
    def check_invariant(profile, workers, limit_scale):
        topo = make_cluster("fuzz", workers, 1, 40.0, 40.0)
        model_bytes = sum(
            l.weight_bytes + l.activation_bytes for l in profile.layers
        )
        limit = max(1.0, limit_scale * model_bytes)
        auto_opt = PipeDreamOptimizer(
            profile, topo, memory_limit_bytes=limit, recompute="auto"
        )
        n = len(profile)
        for stages in _all_plans(n, workers):
            for mask in itertools.product((False, True), repeat=len(stages)):
                masked = [
                    Stage(s.start, s.stop, s.replicas, recompute=flag)
                    for s, flag in zip(stages, mask)
                ]
                foot = pipeline_memory_footprint(profile, masked)
                for s, stage in enumerate(masked):
                    depth = warmup_count(masked, s)
                    # refined-admitted = footprint-feasible: the mask value
                    # is the kernel at the exact depth with the same flag.
                    assert stage_memory_bytes(
                        profile, stage.start, stage.stop, depth,
                        stage.replicas, recompute=stage.recompute,
                    ) == foot[s]
                    # The clamp: checkpointing never costs more bytes.
                    assert stage_memory_bytes(
                        profile, stage.start, stage.stop, depth,
                        stage.replicas, recompute=True,
                    ) <= stage_memory_bytes(
                        profile, stage.start, stage.stop, depth,
                        stage.replicas, recompute=False,
                    )
                if max(foot) <= limit:
                    # bound ⊇ footprint-feasible, whatever the mask.
                    for stage in masked:
                        assert auto_opt._memory_ok(
                            stage.start, stage.stop - 1)

    @given(
        spec=st.lists(
            st.tuples(
                st.floats(0.05, 10.0, allow_nan=False),
                st.integers(0, 100_000),
                st.integers(0, 1_000_000),
                st.sampled_from(["conv", "fc", "lstm", "embedding"]),
            ),
            min_size=2,
            max_size=4,
        ),
        workers=st.integers(2, 3),
        limit_scale=st.floats(0.05, 6.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariant_over_recompute_masks(self, spec, workers, limit_scale):
        self.check_invariant(build_profile(spec), workers, limit_scale)


class TestRecomputeBoundaryDepthAudit:
    """ISSUE 9 satellite: warmup-depth accounting at the recompute boundary.

    A recompute-on stage stashes ``depth`` *boundary* activation sets plus
    at most one full set (the live recompute buffer) — never ``depth``
    full sets — and the phase-1 bound matrix must agree with the refined
    mask on that, or the superset invariant breaks exactly at recompute-on
    stages.
    """

    def _profile(self):
        # Heavy interior activations behind a thin boundary: the shape
        # where checkpointing pays.
        layers = [
            LayerProfile("thin", 1.0, 10, 10),
            LayerProfile("fat", 1.0, 1000, 10),
            LayerProfile("tail", 1.0, 10, 10),
        ]
        return ModelProfile("toy", layers, batch_size=1)

    def test_kernel_prices_boundary_sets_plus_one_buffer(self):
        profile = self._profile()
        # Stage [1, 2) at depth 4: boundary (layer 0's output) is 10 bytes.
        # Off: 10 weights*4 + 1000*4 acts.  On: 10*4 + 10*4 boundary sets
        # + one 1000-byte live buffer — not 4 full sets.
        assert stage_memory_bytes(profile, 1, 2, 4, recompute=False) == \
            10 * 4 + 1000 * 4
        assert stage_memory_bytes(profile, 1, 2, 4, recompute=True) == \
            10 * 4 + 10 * 4 + 1000

    def test_kernel_clamps_recompute_at_stash_everything(self):
        """When the boundary is no thinner than the interior, recompute
        saves nothing and the kernel clamps it to the stash price."""
        layers = [
            LayerProfile("fat", 1.0, 1000, 0),
            LayerProfile("thin", 1.0, 10, 0),
        ]
        profile = ModelProfile("toy", layers, batch_size=1)
        on = stage_memory_bytes(profile, 1, 2, 4, recompute=True)
        off = stage_memory_bytes(profile, 1, 2, 4, recompute=False)
        assert on == off == 40

    def test_bound_floor_agrees_with_refined_recompute_mask(self):
        """Regression for the audit: had the auto floor priced depth
        *full* sets, phase 1 would prune the span below even though its
        recompute-on mask value fits the cap."""
        profile = self._profile()
        topo = make_cluster("flat3", 3, 1, 1000.0, 1000.0)
        limit = 1500.0
        auto = PipeDreamOptimizer(
            profile, topo, memory_limit_bytes=limit, recompute="auto")
        default = PipeDreamOptimizer(
            profile, topo, memory_limit_bytes=limit)
        # Depth-2 mask values for span [1, 2): stash-everything busts the
        # cap, checkpointing fits.
        assert stage_memory_bytes(profile, 1, 2, 2, recompute=False) > limit
        on_cost = stage_memory_bytes(profile, 1, 2, 2, recompute=True)
        assert on_cost <= limit
        # The auto floor admits the span and sits at or below the mask
        # (bound-admitted ⊇ refined-admitted); the default floor — no
        # recompute available — correctly prunes it.
        assert auto._memory_ok(1, 1)
        assert auto._bound_matrix()[1][1] <= on_cost
        assert not default._memory_ok(1, 1)


class TestPrecisionMemoryShift:
    """fp16 roughly halves every §3.3 footprint, so under a fixed
    ``memory_limit_bytes`` the feasible-plan set strictly grows."""

    # Probed crossover for vgg16 @ 16 workers (refined two-phase solve):
    # fp32 is infeasible below ~1.8 GB/worker while fp16 stays feasible
    # down to ~0.85 GB.  1.5 GB sits squarely between the two.
    CROSSOVER_LIMIT = 1.5e9

    def test_fp16_feasible_where_fp32_is_not(self):
        fp32 = analytic_profile("vgg16")
        fp16 = analytic_profile("vgg16", bytes_per_element=2)
        with pytest.raises(RuntimeError):
            PipeDreamOptimizer(
                fp32, TOPO_A, memory_limit_bytes=self.CROSSOVER_LIMIT
            ).solve()
        plan = PipeDreamOptimizer(
            fp16, TOPO_A, memory_limit_bytes=self.CROSSOVER_LIMIT
        ).solve()
        assert max(plan.memory_bytes) <= self.CROSSOVER_LIMIT
        assert plan.memory_bytes == tuple(
            pipeline_memory_footprint(fp16, plan.stages)
        )

    def test_fp16_footprints_at_most_fp32(self):
        """Per stage and plan, the fp16 footprint never exceeds fp32's
        (``max(1, round(n/2))`` can only shrink or hold byte counts)."""
        fp32 = analytic_profile("vgg16")
        fp16 = fp32.with_precision(2)
        plan = PipeDreamOptimizer(fp32, TOPO_A).solve()
        foot32 = pipeline_memory_footprint(fp32, plan.stages)
        foot16 = pipeline_memory_footprint(fp16, plan.stages)
        assert all(h <= f for h, f in zip(foot16, foot32))
        assert max(foot16) < max(foot32)

    def test_refined_fp16_solve_matches_scalar(self):
        fp16 = analytic_profile("vgg16", bytes_per_element=2)
        plan = assert_refined_solves_identical(
            fp16, TOPO_A, self.CROSSOVER_LIMIT
        )
        assert max(plan.memory_bytes) <= self.CROSSOVER_LIMIT


class TestMemoryRefineFuzz:
    @given(
        spec=layer_specs,
        gpus=st.integers(2, 4),
        servers=st.integers(1, 2),
        intra=st.floats(1.0, 1000.0, allow_nan=False),
        inter=st.floats(0.5, 100.0, allow_nan=False),
        limit_scale=st.floats(0.05, 8.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_refined_plans_fit_and_subsume_bound(
        self, spec, gpus, servers, intra, inter, limit_scale
    ):
        profile = build_profile(spec)
        topo = make_cluster("fuzz", gpus, servers, intra, inter)
        model_bytes = sum(
            l.weight_bytes + l.activation_bytes for l in profile.layers
        )
        limit = max(1.0, limit_scale * model_bytes)

        def solve(**kw):
            try:
                return PipeDreamOptimizer(
                    profile, topo, memory_limit_bytes=limit, **kw
                ).solve()
            except RuntimeError:
                return None

        refined = solve()
        refined_scalar = solve(vectorize=False)
        bound = solve(memory_refine=False)

        # Twins agree on feasibility and (bitwise) on the plan.
        assert (refined is None) == (refined_scalar is None)
        if refined is not None:
            assert refined.stages == refined_scalar.stages
            assert (refined.slowest_stage_time
                    == refined_scalar.slowest_stage_time)
            # (a) every refined plan truly fits on every worker.
            foot = pipeline_memory_footprint(profile, refined.stages)
            assert max(foot) <= limit
            assert refined.memory_bytes == tuple(foot)

        # (b) the refined feasible set subsumes the bound's: whenever the
        # bound solver finds a *genuinely* feasible plan, the refined
        # solver also succeeds, at no worse a cost (modulo the solver's
        # 1.03 prefer-fewer-stages tolerance).
        if bound is not None and max(
            pipeline_memory_footprint(profile, bound.stages)
        ) <= limit:
            assert refined is not None
            assert refined.slowest_stage_time <= (
                bound.slowest_stage_time * 1.03 * (1.0 + 1e-9)
            )

    @given(
        spec=layer_specs,
        limit_scale=st.floats(0.1, 4.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_refined_depth_mask_matches_simulator(self, spec, limit_scale):
        """The suffix DP's per-stage depth equals the simulator's warmup
        count for the plan it emits — so the final footprint check never
        discards the refined candidate."""
        profile = build_profile(spec)
        topo = make_cluster("fuzz", 4, 1, 40.0, 40.0)
        model_bytes = sum(
            l.weight_bytes + l.activation_bytes for l in profile.layers
        )
        limit = max(1.0, limit_scale * model_bytes)
        opt = PipeDreamOptimizer(profile, topo, memory_limit_bytes=limit)
        stages = opt._solve_refined(topo)
        if stages is None:
            return
        total = sum(s.replicas for s in stages)
        for s, stage in enumerate(stages):
            downstream = sum(st_.replicas for st_ in stages[s:])
            depth = warmup_count(stages, s)
            assert depth == math.ceil(downstream / stage.replicas)
        foot = pipeline_memory_footprint(profile, stages)
        assert max(foot) <= limit
        assert total == topo.total_workers
