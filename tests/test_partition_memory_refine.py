"""Memory-faithful planning: the footprint-refined solver.

The DP's historical ``_memory_ok`` bound charges every stage
``total_workers`` weight versions; the simulator's
``pipeline_memory_footprint`` charges the §3.3 warmup depth
(``ceil(downstream / replicas)`` — NOAM at the input stage, 1 at the
output stage).  ``PipeDreamOptimizer(memory_refine=True)`` (the default
whenever a limit is set) runs a second, suffix-form DP whose feasibility
mask uses the exact depth and whose sync/boundary costs use the same
placement model as the candidate scoring, then re-checks every candidate
against the true footprint.

This file covers:

* the §3.3 pinning of ``pipeline_memory_footprint`` itself,
* scalar/vectorized bitwise identity of refined solves (differential,
  `test_partition_evaluator_equiv`-style),
* the recovery property on the memory-limited VGG-16 scenario (the perf
  workload's acceptance bar), and
* hypothesis fuzz: refined plans always fit, and the refined feasible
  set subsumes the worst-case-bound feasible set.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    PipeDreamOptimizer,
    Stage,
    evaluate_partition_details,
)
from repro.core.profile import LayerProfile, ModelProfile
from repro.core.schedule import warmup_count
from repro.core.topology import cluster_a, cluster_b, cluster_c, make_cluster
from repro.profiler import analytic_profile
from repro.sim.memory import pipeline_memory_footprint

TOPO_A = cluster_a(4)
VGG_LIMIT = 7e9  # binding for vgg16 @ 16 workers (the perf workload cap)


# ----------------------------------------------------------------------
# §3.3 pinning: the footprint formula is depth x (weights + acts)
# ----------------------------------------------------------------------

class TestSection33Footprint:
    def _profile(self):
        layers = [
            LayerProfile("a", 1.0, 100, 1000),
            LayerProfile("b", 1.0, 200, 2000),
            LayerProfile("c", 1.0, 300, 3000),
            LayerProfile("d", 1.0, 400, 4000),
        ]
        return ModelProfile("toy", layers, batch_size=1)

    def test_input_stage_holds_noam_versions(self):
        """Input stage: NOAM x (weights + acts); output stage: 1 x."""
        profile = self._profile()
        stages = [Stage(0, 2, 1), Stage(2, 3, 1), Stage(3, 4, 1)]
        noam = warmup_count(stages, 0)
        assert noam == 3  # straight 3-stage pipeline
        foot = pipeline_memory_footprint(profile, stages)
        assert foot[0] == noam * ((1000 + 2000) + (100 + 200))
        assert foot[1] == 2 * (3000 + 300)
        assert foot[-1] == 1 * (4000 + 400)

    def test_replicated_input_stage_depth(self):
        """Depth is ceil(downstream / replicas), not raw worker count."""
        profile = self._profile()
        stages = [Stage(0, 2, 3), Stage(2, 4, 1)]
        # 4 workers at-or-downstream of stage 0, 3 replicas -> depth 2.
        assert warmup_count(stages, 0) == 2
        foot = pipeline_memory_footprint(profile, stages)
        assert foot[0] == 2 * ((1000 + 2000) + (100 + 200))
        assert foot[1] == 1 * ((3000 + 4000) + (300 + 400))

    def test_in_flight_override(self):
        profile = self._profile()
        stages = [Stage(0, 4, 1)]
        assert pipeline_memory_footprint(profile, stages) == [
            1 * (10000 + 1000)
        ]
        assert pipeline_memory_footprint(profile, stages, in_flight=[5]) == [
            5 * (10000 + 1000)
        ]


# ----------------------------------------------------------------------
# Differential: refined solves are bitwise-identical across twins
# ----------------------------------------------------------------------

def assert_refined_solves_identical(profile, topology, limit, **kw):
    vec = PipeDreamOptimizer(
        profile, topology, memory_limit_bytes=limit, vectorize=True, **kw
    ).solve()
    ref = PipeDreamOptimizer(
        profile, topology, memory_limit_bytes=limit, vectorize=False, **kw
    ).solve()
    assert vec.stages == ref.stages
    assert vec.slowest_stage_time == ref.slowest_stage_time
    assert vec.memory_bytes == ref.memory_bytes
    assert vec.memory_limit_bytes == ref.memory_limit_bytes == limit
    return vec


@pytest.mark.parametrize("model", ("vgg16", "resnet50", "gnmt8", "alexnet"))
def test_refined_solve_matches_scalar(model):
    profile = analytic_profile(model)
    free = PipeDreamOptimizer(profile, TOPO_A).solve()
    # A binding-but-feasible limit: 80% of the free plan's worst worker.
    limit = 0.8 * max(pipeline_memory_footprint(profile, free.stages))
    plan = assert_refined_solves_identical(profile, TOPO_A, limit)
    assert max(plan.memory_bytes) <= limit


@pytest.mark.parametrize(
    "topo",
    [cluster_a(2), cluster_b(2), cluster_c(4),
     make_cluster("flat8", 8, 1, 40.0, 40.0)],
    ids=lambda t: t.name,
)
def test_refined_solve_matches_scalar_across_topologies(topo):
    profile = analytic_profile("vgg16")
    free = PipeDreamOptimizer(profile, topo).solve()
    limit = 0.9 * max(pipeline_memory_footprint(profile, free.stages))
    assert_refined_solves_identical(profile, topo, limit)


def test_refined_solver_is_memoized():
    profile = analytic_profile("vgg16")
    opt = PipeDreamOptimizer(profile, TOPO_A, memory_limit_bytes=VGG_LIMIT)
    first = opt.solve()
    second = opt.solve()
    assert first.stages == second.stages
    assert first.slowest_stage_time == second.slowest_stage_time


# ----------------------------------------------------------------------
# The recovery property (the perf workload's acceptance scenario)
# ----------------------------------------------------------------------

class TestVgg16Recovery:
    def test_refined_beats_worst_case_bound(self):
        """At 7 GB the bound solver settles for 14-1-1 (whose input stage
        in fact *overflows* the cap); the refined pass finds a strictly
        faster plan that genuinely fits."""
        profile = analytic_profile("vgg16")
        bound = PipeDreamOptimizer(
            profile, TOPO_A, memory_limit_bytes=VGG_LIMIT, memory_refine=False
        ).solve()
        refined = PipeDreamOptimizer(
            profile, TOPO_A, memory_limit_bytes=VGG_LIMIT
        ).solve()
        assert refined.slowest_stage_time < bound.slowest_stage_time
        assert max(refined.memory_bytes) <= VGG_LIMIT
        # The bound's own plan is the cautionary tale: its worst-case
        # arithmetic admitted a plan whose true footprint busts the cap.
        assert max(pipeline_memory_footprint(profile, bound.stages)) \
            > VGG_LIMIT

    def test_refined_result_echoes_memory_fields(self):
        profile = analytic_profile("vgg16")
        plan = PipeDreamOptimizer(
            profile, TOPO_A, memory_limit_bytes=VGG_LIMIT
        ).solve()
        assert plan.memory_limit_bytes == VGG_LIMIT
        assert len(plan.memory_bytes) == len(plan.stages)
        assert plan.memory_bytes == tuple(
            pipeline_memory_footprint(profile, plan.stages)
        )

    def test_unconstrained_result_has_footprint_no_limit(self):
        profile = analytic_profile("vgg16")
        plan = PipeDreamOptimizer(profile, TOPO_A).solve()
        assert plan.memory_limit_bytes is None
        assert plan.memory_bytes == tuple(
            pipeline_memory_footprint(profile, plan.stages)
        )

    def test_refine_off_reproduces_bound_only_behavior(self):
        profile = analytic_profile("vgg16")
        off = PipeDreamOptimizer(
            profile, TOPO_A, memory_limit_bytes=VGG_LIMIT, memory_refine=False
        ).solve()
        off_scalar = PipeDreamOptimizer(
            profile, TOPO_A, memory_limit_bytes=VGG_LIMIT,
            memory_refine=False, vectorize=False,
        ).solve()
        assert off.stages == off_scalar.stages
        assert off.slowest_stage_time == off_scalar.slowest_stage_time

    def test_impossible_limit_raises(self):
        profile = analytic_profile("vgg16")
        with pytest.raises(RuntimeError):
            PipeDreamOptimizer(
                profile, TOPO_A, memory_limit_bytes=1.0
            ).solve()
        with pytest.raises(RuntimeError):
            PipeDreamOptimizer(
                profile, TOPO_A, memory_limit_bytes=1.0, vectorize=False
            ).solve()


# ----------------------------------------------------------------------
# PartitionEvaluation memory fields
# ----------------------------------------------------------------------

def test_evaluation_details_carry_memory():
    profile = analytic_profile("vgg16")
    stages = [Stage(0, 10, 9), Stage(10, 15, 6), Stage(15, len(profile), 1)]
    details = evaluate_partition_details(
        profile, stages, TOPO_A, memory_limit_bytes=VGG_LIMIT
    )
    assert details.memory_bytes == tuple(
        pipeline_memory_footprint(profile, stages)
    )
    assert details.memory_limit_bytes == VGG_LIMIT
    assert details.fits_memory
    tight = evaluate_partition_details(
        profile, stages, TOPO_A, memory_limit_bytes=1.0
    )
    assert not tight.fits_memory
    free = evaluate_partition_details(profile, stages, TOPO_A)
    assert free.memory_limit_bytes is None
    assert free.fits_memory  # no limit -> vacuously true


# ----------------------------------------------------------------------
# Hypothesis fuzz: refined plans fit; refined subsumes the bound
# ----------------------------------------------------------------------

layer_specs = st.lists(
    st.tuples(
        st.floats(0.05, 10.0, allow_nan=False),  # compute time
        st.integers(0, 100_000),                 # activation bytes
        st.integers(0, 1_000_000),               # weight bytes
        st.sampled_from(["conv", "fc", "lstm", "embedding"]),
    ),
    min_size=2,
    max_size=6,
)


def build_profile(spec):
    layers = [LayerProfile(f"l{i}", c, a, w, kind=k)
              for i, (c, a, w, k) in enumerate(spec)]
    return ModelProfile("fuzz", layers, batch_size=1)


class TestMemoryRefineFuzz:
    @given(
        spec=layer_specs,
        gpus=st.integers(2, 4),
        servers=st.integers(1, 2),
        intra=st.floats(1.0, 1000.0, allow_nan=False),
        inter=st.floats(0.5, 100.0, allow_nan=False),
        limit_scale=st.floats(0.05, 8.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_refined_plans_fit_and_subsume_bound(
        self, spec, gpus, servers, intra, inter, limit_scale
    ):
        profile = build_profile(spec)
        topo = make_cluster("fuzz", gpus, servers, intra, inter)
        model_bytes = sum(
            l.weight_bytes + l.activation_bytes for l in profile.layers
        )
        limit = max(1.0, limit_scale * model_bytes)

        def solve(**kw):
            try:
                return PipeDreamOptimizer(
                    profile, topo, memory_limit_bytes=limit, **kw
                ).solve()
            except RuntimeError:
                return None

        refined = solve()
        refined_scalar = solve(vectorize=False)
        bound = solve(memory_refine=False)

        # Twins agree on feasibility and (bitwise) on the plan.
        assert (refined is None) == (refined_scalar is None)
        if refined is not None:
            assert refined.stages == refined_scalar.stages
            assert (refined.slowest_stage_time
                    == refined_scalar.slowest_stage_time)
            # (a) every refined plan truly fits on every worker.
            foot = pipeline_memory_footprint(profile, refined.stages)
            assert max(foot) <= limit
            assert refined.memory_bytes == tuple(foot)

        # (b) the refined feasible set subsumes the bound's: whenever the
        # bound solver finds a *genuinely* feasible plan, the refined
        # solver also succeeds, at no worse a cost (modulo the solver's
        # 1.03 prefer-fewer-stages tolerance).
        if bound is not None and max(
            pipeline_memory_footprint(profile, bound.stages)
        ) <= limit:
            assert refined is not None
            assert refined.slowest_stage_time <= (
                bound.slowest_stage_time * 1.03 * (1.0 + 1e-9)
            )

    @given(
        spec=layer_specs,
        limit_scale=st.floats(0.1, 4.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_refined_depth_mask_matches_simulator(self, spec, limit_scale):
        """The suffix DP's per-stage depth equals the simulator's warmup
        count for the plan it emits — so the final footprint check never
        discards the refined candidate."""
        profile = build_profile(spec)
        topo = make_cluster("fuzz", 4, 1, 40.0, 40.0)
        model_bytes = sum(
            l.weight_bytes + l.activation_bytes for l in profile.layers
        )
        limit = max(1.0, limit_scale * model_bytes)
        opt = PipeDreamOptimizer(profile, topo, memory_limit_bytes=limit)
        stages = opt._solve_refined(topo)
        if stages is None:
            return
        total = sum(s.replicas for s in stages)
        for s, stage in enumerate(stages):
            downstream = sum(st_.replicas for st_ in stages[s:])
            depth = warmup_count(stages, s)
            assert depth == math.ceil(downstream / stage.replicas)
        foot = pipeline_memory_footprint(profile, stages)
        assert max(foot) <= limit
        assert total == topo.total_workers
