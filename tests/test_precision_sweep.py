"""The precision-differential lockdown suite.

Two guarantees:

* **fp32 is the default, bitwise.**  Every sweep/evaluator/engine path
  rerun with an explicit fp32 precision produces records identical to the
  precision-less call — adding the axis must not perturb a single bit of
  existing output (serial, parallel, scalar-vectorize, every strategy,
  both engines).
* **fp16 is exact scaling.**  ``with_precision`` composition collapses
  (hypothesis property on element-divisible profiles), payloads stay
  positive and monotone in ``bytes_per_element``, the profile cache and
  evaluator tables never serve one precision's data to the other, and
  fp16 cells strictly shrink the modeled allreduce/communication terms on
  communication-bound (data-parallel) cells.
"""

import csv
import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    PipeDreamOptimizer,
    Stage,
    evaluate_partition_details,
)
from repro.core.profile import PRECISION_BYTES, LayerProfile, ModelProfile
from repro.core.topology import cluster_a
from repro.profiler import (
    analytic_profile,
    clear_profile_cache,
    profile_cache_stats,
)
from repro.sim.strategies import resolve_precision, simulate_pipedream
from repro.sim.sweep import (
    SweepError,
    precision_chart,
    records_to_csv,
    run_sweep,
)

TOPO = cluster_a(4)
MODELS = ("vgg16", "gnmt8")
COUNTS = (4, 16)


# ----------------------------------------------------------------------
# fp32 differential: explicit fp32 == default, bitwise
# ----------------------------------------------------------------------

class TestFp32Differential:
    def test_default_sweep_identical(self):
        default = run_sweep(MODELS, TOPO, COUNTS)
        explicit = run_sweep(MODELS, TOPO, COUNTS, precisions=("fp32",))
        assert default == explicit

    def test_all_strategies_identical(self):
        strategies = ("dp", "pipedream", "mp", "gpipe")
        default = run_sweep(MODELS, TOPO, COUNTS, strategies=strategies,
                            minibatches=16)
        explicit = run_sweep(MODELS, TOPO, COUNTS, strategies=strategies,
                             minibatches=16, precisions=("fp32",))
        assert default == explicit

    def test_reference_engine_identical(self):
        default = run_sweep(("vgg16",), TOPO, (4,), engine="reference",
                            minibatches=8)
        explicit = run_sweep(("vgg16",), TOPO, (4,), engine="reference",
                             minibatches=8, precisions=("fp32",))
        assert default == explicit

    def test_scalar_vectorize_identical(self):
        default = run_sweep(("vgg16",), TOPO, COUNTS, vectorize=False,
                            minibatches=16)
        explicit = run_sweep(("vgg16",), TOPO, COUNTS, vectorize=False,
                             minibatches=16, precisions=("fp32",))
        assert default == explicit

    def test_parallel_thread_identical_to_serial(self):
        serial = run_sweep(MODELS, TOPO, COUNTS,
                           precisions=("fp32", "fp16"))
        parallel = run_sweep(MODELS, TOPO, COUNTS,
                             precisions=("fp32", "fp16"),
                             workers=3, executor="thread")
        assert serial == parallel

    def test_fp32_records_carry_default_precision_fields(self):
        records = run_sweep(("vgg16",), TOPO, (4,))
        assert all(r.precision == "fp32" for r in records)

    def test_resolve_precision_is_identity_for_matching_width(self):
        profile = analytic_profile("vgg16")
        assert resolve_precision(profile, None) is profile
        assert resolve_precision(profile, "fp32") is profile
        fp16 = resolve_precision(profile, "fp16")
        assert fp16 is not profile
        assert fp16.bytes_per_element == 2
        with pytest.raises(ValueError):
            resolve_precision(profile, "int8")

    def test_driver_precision_fp32_identical(self):
        profile = analytic_profile("vgg16")
        plain = simulate_pipedream(profile, TOPO, num_minibatches=16)
        tagged = simulate_pipedream(profile, TOPO, num_minibatches=16,
                                    precision="fp32")
        assert plain.sim.records == tagged.sim.records
        assert plain.samples_per_second == tagged.samples_per_second
        assert plain.memory_per_worker == tagged.memory_per_worker

    def test_shared_optimizer_rejects_real_conversion(self):
        profile = analytic_profile("vgg16")
        optimizer = PipeDreamOptimizer(profile, TOPO)
        # fp32 is a no-op conversion: allowed.
        simulate_pipedream(profile, TOPO, num_minibatches=8,
                           optimizer=optimizer, precision="fp32")
        with pytest.raises(ValueError):
            simulate_pipedream(profile, TOPO, num_minibatches=8,
                               optimizer=optimizer, precision="fp16")

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(("vgg16",), TOPO, (4,), precisions=("fp8",))


# ----------------------------------------------------------------------
# Cache/table keying: fp32 state never serves an fp16 cell
# ----------------------------------------------------------------------

class TestPrecisionKeying:
    def test_profile_cache_key_includes_width(self):
        clear_profile_cache()
        fp32 = analytic_profile("vgg16")
        assert profile_cache_stats()["entries"] == 1
        fp16 = analytic_profile("vgg16", bytes_per_element=2)
        # The fp16 request was a MISS — a second entry, not the fp32 one.
        assert profile_cache_stats()["entries"] == 2
        assert fp16 is not fp32
        assert fp16.bytes_per_element == 2
        assert fp32.bytes_per_element == 4
        # Same-key requests do hit, per width.
        assert analytic_profile("vgg16") is fp32
        assert analytic_profile("vgg16", bytes_per_element=2) is fp16

    def test_cached_fp32_profile_not_mutated_by_fp16_use(self):
        clear_profile_cache()
        before = analytic_profile("vgg16").to_dict()
        run_sweep(("vgg16",), TOPO, (4,), precisions=("fp16",))
        assert analytic_profile("vgg16").to_dict() == before

    def test_eval_tables_are_per_profile_instance(self):
        """``_EvalTables`` memoizes per ModelProfile object, so the fp16
        conversion (a new object) can never reuse fp32 prefix tables —
        and interleaving precisions leaves fp32 results bitwise-stable."""
        fp32 = analytic_profile("vgg16")
        fp16 = fp32.with_precision(2)
        stages = [Stage(0, 10, 9), Stage(10, 15, 6),
                  Stage(15, len(fp32), 1)]
        first = evaluate_partition_details(fp32, stages, TOPO)
        half = evaluate_partition_details(fp16, stages, TOPO)
        again = evaluate_partition_details(fp32, stages, TOPO)
        assert first == again  # fp16 evaluation didn't contaminate fp32
        assert half != first
        # Boundary transfers move half the bytes, so cost at most fp32's.
        assert all(h <= f for h, f in
                   zip(half.boundary_times, first.boundary_times))
        assert sum(half.boundary_times) < sum(first.boundary_times)
        assert max(half.memory_bytes) < max(first.memory_bytes)


# ----------------------------------------------------------------------
# with_precision properties (hypothesis, element-divisible profiles)
# ----------------------------------------------------------------------

# Profiles whose byte counts are element_count x bytes_per_element make
# every width rescale exact, so composition laws hold with equality.
element_layers = st.lists(
    st.tuples(
        st.floats(0.01, 5.0, allow_nan=False),  # compute time
        st.integers(0, 10_000),                 # activation elements
        st.integers(0, 50_000),                 # weight elements
    ),
    min_size=1,
    max_size=5,
)


def profile_from_elements(spec, bytes_per_element=4):
    layers = [
        LayerProfile(f"l{i}", c, a * bytes_per_element,
                     w * bytes_per_element)
        for i, (c, a, w) in enumerate(spec)
    ]
    return ModelProfile("elems", layers, batch_size=1,
                        bytes_per_element=bytes_per_element)


def layer_bytes(profile):
    return [(l.activation_bytes, l.weight_bytes) for l in profile.layers]


class TestWithPrecisionProperties:
    @given(spec=element_layers)
    @settings(max_examples=60, deadline=None)
    def test_composition_collapses(self, spec):
        """Converting via an intermediate width equals converting directly
        (the associativity/composition law), and the fp32 round trip is
        the identity — on element-divisible profiles, exactly."""
        p = profile_from_elements(spec)
        via_fp16 = p.with_precision(2).with_precision(4)
        direct = p.with_precision(4)
        assert layer_bytes(via_fp16) == layer_bytes(direct) == layer_bytes(p)
        assert layer_bytes(p.with_precision(4).with_precision(2)) == \
            layer_bytes(p.with_precision(2))
        assert via_fp16.bytes_per_element == 4

    @given(spec=element_layers)
    @settings(max_examples=60, deadline=None)
    def test_payloads_positive_and_monotone_in_width(self, spec):
        p = profile_from_elements(spec)
        narrow, wide = p.with_precision(2), p.with_precision(8)
        for orig, lo, hi in zip(p.layers, narrow.layers, wide.layers):
            for attr in ("activation_bytes", "weight_bytes"):
                o, l, h = (getattr(x, attr) for x in (orig, lo, hi))
                # Zero is preserved, nonzero stays strictly positive...
                assert (l == 0) == (o == 0)
                assert (h == 0) == (o == 0)
                assert l >= 0 and h >= 0
                # ...and byte counts are monotone in the element width.
                assert l <= o <= h

    @given(spec=element_layers)
    @settings(max_examples=30, deadline=None)
    def test_compute_times_never_change(self, spec):
        p = profile_from_elements(spec)
        for width in (1, 2, 4, 8):
            q = p.with_precision(width)
            assert [l.compute_time for l in q.layers] == \
                [l.compute_time for l in p.layers]
            assert q.batch_size == p.batch_size

    def test_registry_matches_widths(self):
        assert PRECISION_BYTES == {"fp32": 4, "fp16": 2}


# ----------------------------------------------------------------------
# fp16 cells: the figure-12 direction of every communication metric
# ----------------------------------------------------------------------

class TestFp16SweepEffects:
    @pytest.fixture(scope="class")
    def both(self):
        return run_sweep(MODELS, TOPO, COUNTS,
                         precisions=("fp32", "fp16"))

    def _pairs(self, records, strategy=None):
        by = {(r.model, r.strategy, r.workers, r.precision): r
              for r in records}
        for (model, strat, workers, precision), r16 in by.items():
            if precision != "fp16":
                continue
            if strategy is not None and strat != strategy:
                continue
            yield by[(model, strat, workers, "fp32")], r16

    def test_grid_is_doubled_and_interleaved(self, both):
        assert len(both) == len(MODELS) * len(COUNTS) * 2 * 2
        # Precision is the innermost axis: fp32 immediately before fp16.
        for r32, r16 in zip(both[::2], both[1::2]):
            assert (r32.model, r32.strategy, r32.workers) == \
                (r16.model, r16.strategy, r16.workers)
            assert (r32.precision, r16.precision) == ("fp32", "fp16")

    def test_dp_cells_strictly_cheaper_at_fp16(self, both):
        """The acceptance bar: on the communication-bound data-parallel
        cells, fp16 strictly shrinks the modeled allreduce seconds, the
        per-sample traffic, every per-stage footprint, and the stalled
        fraction — and therefore strictly raises throughput."""
        checked = 0
        for r32, r16 in self._pairs(both, strategy="dp"):
            assert r16.allreduce_seconds < r32.allreduce_seconds
            assert r16.bytes_per_sample < r32.bytes_per_sample
            assert all(h < f for h, f in zip(r16.stage_memory_bytes,
                                             r32.stage_memory_bytes))
            assert r16.communication_overhead < r32.communication_overhead
            assert r16.samples_per_second > r32.samples_per_second
            checked += 1
        assert checked == len(MODELS) * len(COUNTS)

    def test_planner_sees_fp16_and_replans(self, both):
        """Planner integration is visible through the sweep: halved
        payloads shrink the modeled allreduce term, so on at least one
        pipedream cell the optimizer picks a *different* split than it
        does at fp32 (vgg16@4w flips to the pure-DP config, gnmt8@16w
        rebalances its stage widths)."""
        changed = [
            (r32.model, r32.workers, r32.config, r16.config)
            for r32, r16 in self._pairs(both, strategy="pipedream")
            if r16.config != r32.config
        ]
        assert changed, "fp16 profiles never changed a planner decision"

    def test_csv_round_trips_precision_column(self, both):
        text = records_to_csv(both)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert {row["precision"] for row in rows} == {"fp32", "fp16"}
        assert all("allreduce_seconds" in row for row in rows)
        fp16_rows = [row for row in rows if row["precision"] == "fp16"]
        assert len(fp16_rows) == len(both) // 2

    def test_precision_chart_builds_series_per_cell(self, both):
        chart = precision_chart(both, metric="samples_per_second")
        labels = {s.label for s in chart.series}
        assert len(labels) == len(MODELS) * 2 * 2
        assert "vgg16/dp/fp16" in labels
        svg = chart.to_svg()
        assert svg.startswith("<svg")

    def test_failures_carry_precision(self):
        with pytest.raises(SweepError) as excinfo:
            run_sweep(("vgg16", "no-such-model"), TOPO, (4,),
                      precisions=("fp32", "fp16"))
        failures = excinfo.value.failures
        assert {f.precision for f in failures} == {"fp32", "fp16"}
        assert all(f.model == "no-such-model" for f in failures)
        # The good cells survived, at both precisions.
        kept = excinfo.value.records
        assert {r.precision for r in kept} == {"fp32", "fp16"}
