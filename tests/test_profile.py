"""ModelProfile: aggregation, serialization, precision/device scaling."""

import pytest

from repro.core.profile import LayerProfile, ModelProfile


class TestLayerProfile:
    def test_default_forward_backward_split(self):
        layer = LayerProfile("l", 3.0, 10, 20)
        assert layer.forward == pytest.approx(1.0)
        assert layer.backward == pytest.approx(2.0)

    def test_explicit_forward_time(self):
        layer = LayerProfile("l", 3.0, 10, 20, forward_time=0.5)
        assert layer.forward == 0.5
        assert layer.backward == 2.5


class TestModelProfile:
    def test_range_aggregates(self, toy_profile):
        assert toy_profile.compute_time(0, 3) == pytest.approx(9.0)
        assert toy_profile.weight_bytes(3, 5) == 9000
        assert toy_profile.activation_bytes(2) == 600

    def test_totals(self, toy_profile):
        assert toy_profile.total_compute_time == pytest.approx(12.0)
        assert toy_profile.total_weight_bytes == 9600

    def test_len_iter_getitem(self, toy_profile):
        assert len(toy_profile) == 5
        assert toy_profile[0].name == "conv1"
        assert [l.name for l in toy_profile][-1] == "fc2"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ModelProfile("empty", [], batch_size=1)

    def test_bad_batch_rejected(self, toy_profile):
        with pytest.raises(ValueError):
            ModelProfile("m", toy_profile.layers, batch_size=0)

    def test_scaled_compute(self, toy_profile):
        slower = toy_profile.scaled(2.0)
        assert slower.total_compute_time == pytest.approx(24.0)
        assert slower.total_weight_bytes == toy_profile.total_weight_bytes

    def test_with_precision_halves_bytes(self, toy_profile):
        fp16 = toy_profile.with_precision(2)
        assert fp16.total_weight_bytes == toy_profile.total_weight_bytes // 2
        assert fp16.total_compute_time == toy_profile.total_compute_time
        assert fp16.bytes_per_element == 2

    def test_with_precision_never_zeroes_nonzero_payloads(self):
        """Downscaling must not truncate a 1-byte payload to 0 — a zeroed
        activation makes its boundary link free for the planner."""
        layers = [
            LayerProfile("tiny", 1.0, 1, 1),
            LayerProfile("odd", 1.0, 3, 5),
            LayerProfile("zero", 1.0, 0, 0),
        ]
        profile = ModelProfile("m", layers, batch_size=1)
        fp16 = profile.with_precision(2)
        assert fp16.layers[0].activation_bytes >= 1
        assert fp16.layers[0].weight_bytes >= 1
        assert fp16.layers[1].activation_bytes == 2  # round, not truncate
        # Zero payloads stay exactly zero (parameterless layers).
        assert fp16.layers[2].activation_bytes == 0
        assert fp16.layers[2].weight_bytes == 0
        # Round-tripping the precision never zeroes what started nonzero.
        back = fp16.with_precision(4)
        for orig, rt in zip(profile.layers, back.layers):
            assert (rt.activation_bytes > 0) == (orig.activation_bytes > 0)
            assert (rt.weight_bytes > 0) == (orig.weight_bytes > 0)

    def test_json_roundtrip(self, toy_profile):
        restored = ModelProfile.from_json(toy_profile.to_json())
        assert restored.model_name == toy_profile.model_name
        assert restored.batch_size == toy_profile.batch_size
        assert len(restored) == len(toy_profile)
        for a, b in zip(restored, toy_profile):
            assert a == b

    def test_repr(self, toy_profile):
        assert "toy" in repr(toy_profile)
