"""Measured and analytic profilers."""

import numpy as np
import pytest

from repro.models import build_gnmt, build_mlp, build_vgg
from repro.profiler import (
    analytic_profile,
    available_models,
    clear_profile_cache,
    profile_cache_stats,
    profile_model,
)
from repro.profiler.analytic import (
    DEVICE_PEAK_FLOPS,
    KIND_EFFICIENCY,
    resnet50_layers,
    vgg16_layers,
)
from repro.profiler.flops import flops_of
from repro.nn import Conv2d, Linear, LSTM


class TestMeasuredProfiler:
    def test_profiles_every_layer(self, rng):
        model = build_mlp(rng=rng)
        profile = profile_model(model, rng.standard_normal((8, 16)),
                                num_iterations=1, warmup=0)
        assert len(profile) == model.num_layers
        assert all(l.compute_time > 0 for l in profile)

    def test_weight_bytes_match_model(self, rng):
        model = build_mlp(rng=rng)
        profile = profile_model(model, rng.standard_normal((8, 16)),
                                num_iterations=1, warmup=0)
        assert profile.total_weight_bytes == model.parameter_bytes()

    def test_activation_bytes_scale_with_batch(self, rng):
        model = build_mlp(rng=rng)
        p8 = profile_model(model, rng.standard_normal((8, 16)), 1, 0)
        p16 = profile_model(model, rng.standard_normal((16, 16)), 1, 0)
        assert p16.layers[0].activation_bytes == 2 * p8.layers[0].activation_bytes

    def test_forward_backward_split_recorded(self, rng):
        model = build_mlp(rng=rng)
        profile = profile_model(model, rng.standard_normal((8, 16)), 1, 0)
        for layer in profile:
            assert layer.forward_time is not None
            assert 0 < layer.forward < layer.compute_time

    def test_int_input_model(self, rng):
        model = build_gnmt(num_lstm_layers=2, vocab_size=8, hidden_size=4, rng=rng)
        tokens = rng.integers(0, 8, (4, 5))
        profile = profile_model(model, tokens, num_iterations=1, warmup=0)
        assert len(profile) == model.num_layers

    def test_parameterless_model_matches_analytic_default(self, rng):
        """A model with no parameters has no dtype to read the element
        width from; the fallback must agree with the analytic profiler's
        fp32 default (4), not the engine's float64 (8) — otherwise the
        same model gets 2x-different allreduce sizing depending on which
        profiler built its profile."""
        from repro.comm.collective import allreduce_bytes_for_profile
        from repro.models.base import LayeredModel
        from repro.nn import ReLU

        model = LayeredModel("stateless", [("act0", ReLU()), ("act1", ReLU())])
        measured = profile_model(model, rng.standard_normal((4, 8)),
                                 num_iterations=1, warmup=0)
        analytic = analytic_profile("vgg16")
        assert measured.bytes_per_element == analytic.bytes_per_element == 4
        # Zero weights -> zero allreduce volume on both paths, and the
        # divisor the sizing uses is identical for both profiles.
        assert allreduce_bytes_for_profile(measured, 4) == 0
        assert measured.total_weight_bytes == 0

    def test_parameterized_model_reads_dtype(self, rng):
        """With parameters present the element width still comes from the
        arrays themselves (the engine runs float64 today)."""
        from repro.comm.collective import allreduce_bytes_for_profile

        model = build_mlp(rng=rng)
        profile = profile_model(model, rng.standard_normal((8, 16)),
                                num_iterations=1, warmup=0)
        assert profile.bytes_per_element == 8
        # allreduce element count = weight bytes / element width; sizing
        # re-applies the profile's own width, so the closed-form volume
        # 2 (m-1) |w| is exact in bytes.
        assert allreduce_bytes_for_profile(profile, 4) == \
            2 * 3 * profile.total_weight_bytes


class TestFlopsEstimates:
    def test_conv_flops(self, rng):
        conv = Conv2d(3, 8, 3, padding=1, rng=rng)
        flops = flops_of(conv, (1, 3, 8, 8), (1, 8, 8, 8))
        assert flops == 8 * 8 * 8 * 3 * 9

    def test_linear_flops(self, rng):
        fc = Linear(10, 5, rng=rng)
        assert flops_of(fc, (1, 10), (1, 5)) == 50

    def test_linear_sequence_flops(self, rng):
        fc = Linear(10, 5, rng=rng)
        assert flops_of(fc, (1, 7, 10), (1, 7, 5)) == 7 * 50

    def test_lstm_flops(self, rng):
        lstm = LSTM(4, 6, rng=rng)
        assert flops_of(lstm, (1, 5, 4), (1, 5, 6)) == 5 * 4 * 6 * 10


class TestAnalyticProfiles:
    def test_all_models_available(self):
        assert set(available_models()) == {
            "vgg16", "resnet50", "alexnet", "gnmt8", "gnmt16", "awd-lm", "s2vt",
            "ssd", "mask-rcnn",
        }

    def test_ssd_published_parameter_count(self):
        """SSD300: ~26M backbone/extras + detection heads (~35M total)."""
        profile = analytic_profile("ssd")
        params = profile.total_weight_bytes / 4
        assert 25e6 < params < 40e6

    def test_mask_rcnn_published_parameter_count(self):
        """Mask R-CNN R50-FPN: ~44M parameters (+/- head bookkeeping)."""
        profile = analytic_profile("mask-rcnn")
        params = profile.total_weight_bytes / 4
        assert 40e6 < params < 65e6

    def test_mask_rcnn_scaled_activations(self):
        """800px inputs inflate backbone activations ~13x over 224px."""
        rcnn = analytic_profile("mask-rcnn", batch_size=1)
        resnet = analytic_profile("resnet50", batch_size=1)
        assert rcnn.layers[0].activation_bytes > 10 * resnet.layers[0].activation_bytes

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            analytic_profile("nope")

    def test_vgg16_published_parameter_count(self):
        """Full VGG-16 has ~138M parameters (~553 MB in fp32)."""
        profile = analytic_profile("vgg16")
        params = profile.total_weight_bytes / 4
        assert 135e6 < params < 141e6

    def test_resnet50_published_parameter_count(self):
        profile = analytic_profile("resnet50")
        params = profile.total_weight_bytes / 4
        assert 23e6 < params < 28e6

    def test_alexnet_published_parameter_count(self):
        profile = analytic_profile("alexnet")
        params = profile.total_weight_bytes / 4
        assert 55e6 < params < 65e6

    def test_awd_lm_paper_weight_size(self):
        """§5.2: the LM's parameters are ~0.41 GB."""
        profile = analytic_profile("awd-lm")
        lstm_bytes = sum(l.weight_bytes for l in profile if l.name.startswith("lstm"))
        assert 0.35e9 < lstm_bytes < 0.5e9

    def test_vgg_fc_weight_concentration(self):
        profile = analytic_profile("vgg16")
        fc_bytes = sum(l.weight_bytes for l in profile if l.name.startswith("fc"))
        assert fc_bytes > 0.85 * profile.total_weight_bytes

    def test_resnet_weights_compact_activations_large(self):
        """The property that makes DP optimal for ResNet-50 (Table 1)."""
        profile = analytic_profile("resnet50")
        early = profile.layers[2]
        assert early.activation_bytes > early.weight_bytes

    def test_gnmt16_has_16_lstm_layers(self):
        profile = analytic_profile("gnmt16")
        lstms = [l for l in profile if l.name.startswith("lstm")]
        assert len(lstms) == 16

    def test_paper_default_batch_sizes(self):
        assert analytic_profile("vgg16").batch_size == 64
        assert analytic_profile("resnet50").batch_size == 128
        assert analytic_profile("alexnet").batch_size == 256
        assert analytic_profile("awd-lm").batch_size == 80

    def test_batch_size_scales_times_and_activations(self):
        small = analytic_profile("vgg16", batch_size=32)
        large = analytic_profile("vgg16", batch_size=64)
        assert large.total_compute_time == pytest.approx(2 * small.total_compute_time)
        assert large.layers[0].activation_bytes == 2 * small.layers[0].activation_bytes
        assert large.total_weight_bytes == small.total_weight_bytes

    def test_slower_device_scales_compute(self):
        v100 = analytic_profile("vgg16", device="v100")
        ti = analytic_profile("vgg16", device="1080ti")
        ratio = ti.total_compute_time / v100.total_compute_time
        assert ratio == pytest.approx(
            DEVICE_PEAK_FLOPS["v100"] / DEVICE_PEAK_FLOPS["1080ti"], rel=1e-6
        )

    def test_fp16_halves_bytes_not_compute(self):
        fp32 = analytic_profile("gnmt8", bytes_per_element=4)
        fp16 = analytic_profile("gnmt8", bytes_per_element=2)
        assert fp16.total_weight_bytes == fp32.total_weight_bytes // 2
        assert fp16.total_compute_time == fp32.total_compute_time

    def test_resnet50_flops_published(self):
        """ResNet-50 forward ~4 GMACs per 224x224 image."""
        total = sum(l.flops for l in resnet50_layers())
        assert 3.5e9 < total < 4.8e9

    def test_vgg16_flops_published(self):
        """VGG-16 forward ~15.5 GMACs per image."""
        total = sum(l.flops for l in vgg16_layers())
        assert 14e9 < total < 16.5e9

    def test_gemm_kinds_more_efficient_than_memory_bound(self):
        assert KIND_EFFICIENCY["conv"] > KIND_EFFICIENCY["pool"]
        assert KIND_EFFICIENCY["fc"] > KIND_EFFICIENCY["embedding"]


class TestProfileCache:
    """The analytic-profile cache: same key -> same object, no collisions."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_profile_cache()
        yield
        clear_profile_cache()

    def test_hit_returns_same_object(self):
        first = analytic_profile("vgg16")
        second = analytic_profile("vgg16")
        assert second is first

    def test_cache_false_builds_fresh_equal_profile(self):
        cached = analytic_profile("vgg16")
        fresh = analytic_profile("vgg16", cache=False)
        assert fresh is not cached
        assert fresh.model_name == cached.model_name
        assert fresh.batch_size == cached.batch_size
        assert len(fresh) == len(cached)
        assert [l.compute_time for l in fresh] == \
            [l.compute_time for l in cached]
        assert [l.weight_bytes for l in fresh] == \
            [l.weight_bytes for l in cached]

    def test_cache_false_does_not_populate(self):
        analytic_profile("vgg16", cache=False)
        assert profile_cache_stats()["entries"] == 0

    def test_distinct_keys_do_not_collide(self):
        base = analytic_profile("gnmt8")
        assert analytic_profile("gnmt16") is not base
        assert analytic_profile("gnmt8", batch_size=7) is not base
        assert analytic_profile("gnmt8", device="1080ti") is not base
        assert analytic_profile("gnmt8", bytes_per_element=2) is not base
        # Each variant really differs where its key says it should.
        assert analytic_profile("gnmt8", batch_size=7).batch_size == 7
        assert (analytic_profile("gnmt8", bytes_per_element=2).total_weight_bytes
                == base.total_weight_bytes // 2)
        assert profile_cache_stats()["entries"] == 5

    def test_clear_resets(self):
        first = analytic_profile("resnet50")
        clear_profile_cache()
        assert profile_cache_stats()["entries"] == 0
        rebuilt = analytic_profile("resnet50")
        assert rebuilt is not first

    def test_thread_safety_single_instance(self):
        """Concurrent misses on one key converge to a single instance."""
        import threading

        results = []
        barrier = threading.Barrier(8)

        def build():
            barrier.wait()
            results.append(analytic_profile("mask-rcnn"))

        threads = [threading.Thread(target=build) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        assert all(p is results[0] for p in results)
        assert profile_cache_stats()["entries"] == 1
