"""Property-based tests (hypothesis) on the core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, functional as F
from repro.autodiff.engine import unbroadcast
from repro.core.partition import (
    PipeDreamOptimizer,
    Stage,
    brute_force_partition,
    communication_bytes_per_minibatch,
    evaluate_partition,
)
from repro.core.profile import LayerProfile, ModelProfile
from repro.core.schedule import (
    OpKind,
    compute_noam,
    gpipe_schedule,
    one_f_one_b_rr_schedule,
    validate_schedule,
)
from repro.core.stashing import WeightStore
from repro.core.topology import make_cluster


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

layer_lists = st.lists(
    st.tuples(
        st.floats(0.1, 10.0),  # compute
        st.integers(1, 10_000),  # activation bytes
        st.integers(0, 10_000),  # weight bytes
    ),
    min_size=2,
    max_size=5,
)


def build_profile(spec):
    layers = [
        LayerProfile(f"l{i}", c, a, w) for i, (c, a, w) in enumerate(spec)
    ]
    return ModelProfile("h", layers, batch_size=1)


stage_configs = st.lists(st.integers(1, 4), min_size=1, max_size=4)


# ----------------------------------------------------------------------
# Partitioner properties
# ----------------------------------------------------------------------

class TestPartitionerProperties:
    @settings(max_examples=25, deadline=None)
    @given(spec=layer_lists, workers=st.integers(2, 4),
           bandwidth=st.floats(10.0, 10_000.0))
    def test_dp_matches_brute_force(self, spec, workers, bandwidth):
        profile = build_profile(spec)
        topo = make_cluster("h", workers, 1, bandwidth, bandwidth)
        result = PipeDreamOptimizer(profile, topo).solve()
        _, best = brute_force_partition(profile, topo)
        assert result.slowest_stage_time == pytest.approx(best)

    @settings(max_examples=25, deadline=None)
    @given(spec=layer_lists, workers=st.integers(1, 4))
    def test_partition_structure_invariants(self, spec, workers):
        profile = build_profile(spec)
        topo = make_cluster("h", workers, 1, 100.0, 100.0)
        result = PipeDreamOptimizer(profile, topo).solve()
        assert result.stages[0].start == 0
        assert result.stages[-1].stop == len(profile)
        for a, b in zip(result.stages, result.stages[1:]):
            assert a.stop == b.start
        assert sum(s.replicas for s in result.stages) == workers
        assert result.slowest_stage_time > 0

    @settings(max_examples=25, deadline=None)
    @given(spec=layer_lists, workers=st.integers(2, 4))
    def test_never_beats_perfect_parallelism(self, spec, workers):
        """The bottleneck can never be better than compute / workers.

        (Note: adding workers CAN hurt — the paper's formulation allocates
        every worker, and forced replication/boundaries have real costs — so
        monotonicity in worker count is deliberately not asserted.)
        """
        profile = build_profile(spec)
        topo = make_cluster("l", workers, 1, 100.0, 100.0)
        result = PipeDreamOptimizer(profile, topo).solve()
        ideal = profile.total_compute_time / workers
        assert result.slowest_stage_time >= ideal - 1e-12

    @settings(max_examples=25, deadline=None)
    @given(spec=layer_lists, workers=st.integers(2, 4),
           bandwidth=st.floats(10.0, 10_000.0))
    def test_reported_cost_matches_evaluation(self, spec, workers, bandwidth):
        """The DP's claimed bottleneck equals evaluating its own plan."""
        profile = build_profile(spec)
        topo = make_cluster("h", workers, 1, bandwidth, bandwidth)
        result = PipeDreamOptimizer(profile, topo).solve()
        evaluated = evaluate_partition(profile, result.stages, bandwidth)
        assert result.slowest_stage_time == pytest.approx(evaluated)

    @settings(max_examples=20, deadline=None)
    @given(spec=layer_lists)
    def test_comm_volume_nonnegative_and_zero_for_one_worker(self, spec):
        profile = build_profile(spec)
        single = [Stage(0, len(profile), 1)]
        assert communication_bytes_per_minibatch(profile, single) == 0.0


# ----------------------------------------------------------------------
# Schedule properties
# ----------------------------------------------------------------------

class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(config=stage_configs, minibatches=st.integers(1, 20))
    def test_rr_schedules_always_valid(self, config, minibatches):
        stages = [Stage(i, i + 1, r) for i, r in enumerate(config)]
        schedule = one_f_one_b_rr_schedule(stages, minibatches)
        validate_schedule(schedule)

    @settings(max_examples=40, deadline=None)
    @given(config=stage_configs, minibatches=st.integers(1, 20))
    def test_rr_routing_consistency(self, config, minibatches):
        stages = [Stage(i, i + 1, r) for i, r in enumerate(config)]
        schedule = one_f_one_b_rr_schedule(stages, minibatches)
        for s, stage in enumerate(stages):
            for b in range(minibatches):
                worker = schedule.replica_for(s, b)
                ops = schedule.worker_ops[worker]
                assert any(
                    o.kind == OpKind.FORWARD and o.minibatch == b for o in ops
                )
                assert any(
                    o.kind == OpKind.BACKWARD and o.minibatch == b for o in ops
                )

    @settings(max_examples=40, deadline=None)
    @given(config=stage_configs)
    def test_noam_bounds(self, config):
        stages = [Stage(i, i + 1, r) for i, r in enumerate(config)]
        noam = compute_noam(stages)
        workers = sum(config)
        assert 1 <= noam <= workers

    @settings(max_examples=20, deadline=None)
    @given(stages=st.integers(1, 4), batches=st.integers(1, 4),
           micros=st.integers(1, 6))
    def test_gpipe_schedules_always_valid(self, stages, batches, micros):
        schedule = gpipe_schedule(stages, batches, micros)
        validate_schedule(schedule)
        assert len(schedule.flush_after) == batches


# ----------------------------------------------------------------------
# Weight store properties
# ----------------------------------------------------------------------

class TestStashingProperties:
    @settings(max_examples=30, deadline=None)
    @given(order=st.permutations(list(range(6))))
    def test_backward_always_sees_forward_version(self, order):
        """Whatever the backward completion order, versions match stashes."""
        store = WeightStore({"w": np.zeros(2)})
        forward_versions = {}
        for mb in range(6):
            forward_versions[mb] = store.weights_for_forward(mb).version
            store.commit({"w": np.full(2, mb + 1.0)})
        for mb in order:
            assert store.weights_for_backward(mb).version == forward_versions[mb]
        assert store.num_live_versions == 1

    @settings(max_examples=30, deadline=None)
    @given(in_flight=st.integers(1, 10))
    def test_live_versions_bounded_by_in_flight(self, in_flight):
        store = WeightStore({"w": np.zeros(2)})
        for mb in range(in_flight):
            store.weights_for_forward(mb)
            store.commit({"w": np.full(2, mb + 1.0)})
        assert store.num_live_versions <= in_flight + 1


# ----------------------------------------------------------------------
# Autodiff properties
# ----------------------------------------------------------------------

class TestAutodiffProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.integers(1, 4), cols=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    def test_softmax_rows_sum_to_one(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((rows, cols)) * 5)
        np.testing.assert_allclose(F.softmax(x).data.sum(axis=-1), np.ones(rows))

    @settings(max_examples=30, deadline=None)
    @given(
        shape=st.lists(st.integers(1, 4), min_size=1, max_size=3),
        extra=st.lists(st.integers(1, 3), min_size=0, max_size=2),
        seed=st.integers(0, 2**16),
    )
    def test_unbroadcast_inverts_broadcast(self, shape, extra, seed):
        """Summing a broadcast all-ones gradient counts the fan-out."""
        rng = np.random.default_rng(seed)
        target = tuple(shape)
        big = tuple(extra) + target
        grad = np.ones(big)
        out = unbroadcast(grad, target)
        assert out.shape == target
        np.testing.assert_allclose(out, np.prod(extra) * np.ones(target))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 5))
    def test_sum_linearity(self, seed, n):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((n, 3)), requires_grad=True)
        (x.sum() * 2.0).backward()
        np.testing.assert_allclose(x.grad, np.full((n, 3), 2.0))
