"""Property-based tests for the comm substrate and deployment plans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import Network, ring_allreduce, ring_allreduce_bytes
from repro.core.deploy import DeploymentPlan, deserialize_schedule, serialize_schedule
from repro.core.partition import Stage
from repro.core.profile import LayerProfile, ModelProfile
from repro.core.partition import PipeDreamOptimizer
from repro.core.schedule import one_f_one_b_rr_schedule, validate_schedule
from repro.core.topology import make_cluster


class TestAllReduceProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(1, 6),
        size=st.integers(1, 40),
        seed=st.integers(0, 2**16),
    )
    def test_matches_mean_for_any_shape(self, m, size, seed):
        rng = np.random.default_rng(seed)
        contributions = [{"w": rng.standard_normal(size)} for _ in range(m)]
        results = ring_allreduce(contributions)
        expected = np.mean([c["w"] for c in contributions], axis=0)
        for result in results:
            np.testing.assert_allclose(result["w"], expected, atol=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(m=st.integers(2, 6), size=st.integers(1, 60))
    def test_bytes_always_match_closed_form(self, m, size):
        network = Network()
        ring_allreduce([{"w": np.zeros(size)} for _ in range(m)], network)
        assert network.total_bytes == ring_allreduce_bytes(size, m)
        assert network.in_flight() == 0

    @settings(max_examples=30, deadline=None)
    @given(m=st.integers(2, 5), seed=st.integers(0, 2**16))
    def test_all_participants_agree(self, m, seed):
        rng = np.random.default_rng(seed)
        contributions = [
            {"a": rng.standard_normal((2, 3)), "b": rng.standard_normal(4)}
            for _ in range(m)
        ]
        results = ring_allreduce(contributions)
        for result in results[1:]:
            for name in ("a", "b"):
                np.testing.assert_array_equal(result[name], results[0][name])

    @settings(max_examples=20, deadline=None)
    @given(m=st.integers(1, 5), size=st.integers(1, 30))
    def test_sum_equals_m_times_average(self, m, size):
        contributions = [{"w": np.ones(size) * (i + 1)} for i in range(m)]
        summed = ring_allreduce(contributions, average=False)[0]["w"]
        averaged = ring_allreduce(contributions, average=True)[0]["w"]
        np.testing.assert_allclose(summed, m * averaged, atol=1e-9)


configs = st.lists(st.integers(1, 4), min_size=1, max_size=4)


class TestDeployProperties:
    @settings(max_examples=30, deadline=None)
    @given(config=configs, minibatches=st.integers(1, 12))
    def test_schedule_serialization_roundtrip(self, config, minibatches):
        stages = [Stage(i, i + 1, r) for i, r in enumerate(config)]
        schedule = one_f_one_b_rr_schedule(stages, minibatches)
        restored = deserialize_schedule(serialize_schedule(schedule))
        assert restored.worker_ops == schedule.worker_ops
        validate_schedule(restored)

    @settings(max_examples=25, deadline=None)
    @given(
        n_layers=st.integers(2, 5),
        workers=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    def test_plan_roundtrip_and_annotations(self, n_layers, workers, seed):
        rng = np.random.default_rng(seed)
        layers = [
            LayerProfile(f"l{i}", float(rng.uniform(0.5, 3.0)),
                         int(rng.integers(1, 500)), int(rng.integers(0, 500)))
            for i in range(n_layers)
        ]
        profile = ModelProfile("h", layers, batch_size=1)
        topology = make_cluster("h", workers, 1, 100.0, 100.0)
        result = PipeDreamOptimizer(profile, topology).solve()
        plan = DeploymentPlan.from_partition(result)
        restored = DeploymentPlan.from_json(plan.to_json())
        assert restored.stages == plan.stages
        # Every layer annotated with a stage containing it.
        for annotation in restored.annotated_layers():
            stage = restored.stages[annotation["stage"]]
            assert stage.start <= annotation["index"] < stage.stop
        # Worker ids are contiguous and complete.
        assert [a.worker for a in restored.assignments] == list(range(workers))
