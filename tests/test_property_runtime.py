"""Property-based tests over the training runtime itself."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import Stage
from repro.data import make_classification_data
from repro.models import build_mlp
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.runtime import CheckpointManager, PipelineTrainer, SequentialTrainer

LOSS = CrossEntropyLoss()


def make_task(seed: int, num_batches: int = 6, batch: int = 8):
    X, y = make_classification_data(num_samples=num_batches * batch,
                                    num_features=8, num_classes=3, seed=seed)
    return [(X[i * batch : (i + 1) * batch], y[i * batch : (i + 1) * batch])
            for i in range(num_batches)]


def make_model(depth: int, seed: int):
    return build_mlp(in_features=8, hidden=tuple([12] * depth), num_classes=3,
                     rng=np.random.default_rng(seed))


def straight_partitions(num_layers: int, num_stages: int):
    """Evenly-sized contiguous straight partition."""
    bounds = [round(i * num_layers / num_stages) for i in range(num_stages + 1)]
    bounds = sorted(set(bounds))
    return [Stage(a, b, 1) for a, b in zip(bounds[:-1], bounds[1:])]


class TestPipelineProperties:
    @settings(max_examples=12, deadline=None)
    @given(depth=st.integers(1, 3), seed=st.integers(0, 2**10))
    def test_single_stage_always_equals_sgd(self, depth, seed):
        task = make_task(seed)
        m_pipe, m_ref = make_model(depth, seed), make_model(depth, seed)
        n = m_pipe.num_layers
        pipe = PipelineTrainer(m_pipe, [Stage(0, n, 1)], LOSS,
                               lambda ps: SGD(ps, lr=0.05))
        ref = SequentialTrainer(m_ref, LOSS, SGD(m_ref.parameters(), lr=0.05))
        pipe.train_minibatches(task)
        ref.train_epoch(task)
        pipe.consolidated_model()
        for (name, pa), (_, pb) in zip(m_pipe.named_parameters(),
                                       m_ref.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-12,
                                       err_msg=name)

    @settings(max_examples=12, deadline=None)
    @given(
        depth=st.integers(2, 4),
        num_stages=st.integers(2, 4),
        seed=st.integers(0, 2**10),
    )
    def test_staleness_formula_any_straight_partition(self, depth, num_stages,
                                                      seed):
        """v_s(b) = max(0, b - (n-1-s)) for every straight partition."""
        task = make_task(seed)
        model = make_model(depth, seed)
        stages = straight_partitions(model.num_layers, num_stages)
        n = len(stages)
        pipe = PipelineTrainer(model, stages, LOSS, lambda ps: SGD(ps, lr=0.02))
        pipe.train_minibatches(task)
        for b in range(len(task)):
            for s in range(n):
                expected = max(0, b - (n - 1 - s))
                assert pipe.stats.forward_versions[(s, b)] == expected

    @settings(max_examples=10, deadline=None)
    @given(
        replicas=st.integers(1, 3),
        seed=st.integers(0, 2**10),
    )
    def test_replicated_front_trains_and_stays_consistent(self, replicas, seed):
        task = make_task(seed, num_batches=6)
        model = make_model(2, seed)
        stages = [Stage(0, 2, replicas), Stage(2, 3, 1)]
        pipe = PipelineTrainer(model, stages, LOSS, lambda ps: SGD(ps, lr=0.05))
        first = pipe.train_minibatches(task)
        for _ in range(3):
            last = pipe.train_minibatches(task)
        assert np.isfinite(last)
        group = pipe.replicas[0]
        for other in group[1:]:
            for (name, pa), (_, pb) in zip(
                group[0].module.named_parameters(),
                other.module.named_parameters(),
            ):
                np.testing.assert_allclose(pa.data, pb.data, atol=1e-9,
                                           err_msg=name)

    @settings(max_examples=10, deadline=None)
    @given(
        crash_epoch=st.integers(0, 4),
        cadence=st.integers(1, 3),
        num_stages=st.integers(1, 3),
        seed=st.integers(0, 2**10),
    )
    def test_crash_resume_loses_no_committed_round(
            self, tmp_path_factory, crash_epoch, cadence, num_stages, seed):
        """For any crash epoch and checkpoint cadence, a crash/resume
        cycle never loses or double-applies a committed update round:
        replaying from the last complete checkpoint lands bitwise on the
        uninterrupted run, the version counters account exactly for the
        rounds committed since the restore, and no update is skipped."""
        total_epochs = 5
        task = make_task(seed, num_batches=4)
        model = make_model(2, seed)
        stages = straight_partitions(model.num_layers, num_stages)
        manager = CheckpointManager(
            str(tmp_path_factory.mktemp("ckpt")))

        oracle = PipelineTrainer(make_model(2, seed), stages, LOSS,
                                 lambda ps: SGD(ps, lr=0.02))
        for _ in range(total_epochs):
            oracle.train_minibatches(task)
        expected = {name: p.data.copy() for name, p in
                    oracle.consolidated_model().named_parameters()}

        # The doomed run: checkpoint on the cadence, crash after
        # ``crash_epoch`` epochs (work past the last boundary is lost).
        doomed = PipelineTrainer(model, stages, LOSS,
                                 lambda ps: SGD(ps, lr=0.02))
        for epoch in range(crash_epoch):
            doomed.train_minibatches(task)
            if (epoch + 1) % cadence == 0:
                doomed.save_checkpoint(manager, epoch=epoch)

        resumed = PipelineTrainer(make_model(2, seed + 1), stages, LOSS,
                                  lambda ps: SGD(ps, lr=0.02))
        restored = resumed.restore_checkpoint(manager)
        if restored is None:
            # No complete checkpoint: the §4 restart rule replays from
            # initialization — rebuild from the oracle's init instead.
            resumed = PipelineTrainer(make_model(2, seed), stages, LOSS,
                                      lambda ps: SGD(ps, lr=0.02))
            replay_epochs = total_epochs
        else:
            assert restored == ((crash_epoch // cadence) * cadence) - 1
            replay_epochs = total_epochs - (restored + 1)
        assert resumed.stats.skipped_updates == {}
        for _ in range(replay_epochs):
            resumed.train_minibatches(task)

        # Version counters == rounds committed since the restore: every
        # committed round is applied exactly once.
        assert resumed.stage_versions() == (
            [replay_epochs * len(task)] * len(stages))
        assert resumed.stats.skipped_updates == {}
        for name, p in resumed.consolidated_model().named_parameters():
            np.testing.assert_array_equal(p.data, expected[name],
                                          err_msg=name)

    @settings(max_examples=10, deadline=None)
    @given(accumulation=st.integers(1, 4), seed=st.integers(0, 2**10))
    def test_version_count_matches_accumulation(self, accumulation, seed):
        """Updates committed = ceil(batches / accumulation) on one stage."""
        task = make_task(seed, num_batches=7)
        model = make_model(1, seed)
        pipe = PipelineTrainer(model, [Stage(0, model.num_layers, 1)], LOSS,
                               lambda ps: SGD(ps, lr=0.05),
                               gradient_accumulation=accumulation)
        pipe.train_minibatches(task)
        expected = -(-len(task) // accumulation)
        assert pipe.stage_versions() == [expected]
