"""Recompute-aware planning + the 2BP backward-split schedule family.

Covers the ISSUE 9 acceptance bars:

* ``recompute=None`` and ``schedule_family="1f1b"`` are structural no-ops
  — identical plans, identical solver cache namespaces, and (for every
  existing engine-equivalence scenario) the 1F1B family returns the very
  same schedule object;
* the 2BP split (``OpKind.BACKWARD_W``) is priced bitwise-identically by
  the reference and event engines across every scenario, conserves total
  work exactly, and strictly shrinks the pipeline bubble on the pinned
  gnmt16 plan;
* the pinned feasibility shift: a straight gnmt16 pipeline under a
  2.2 GB/worker cap is infeasible with recompute off and feasible with
  the planner checkpointing at least one stage — scalar/vectorized twins
  and warm/cold solves all bitwise-equal;
* the runtime executes 2BP and per-stage recompute with bitwise-identical
  losses and final weights to plain 1F1B (the semantics, not the clock,
  are unchanged).
"""

import numpy as np
import pytest

from repro.core.partition import PipeDreamOptimizer, SolverContext, Stage
from repro.core.schedule import (
    SCHEDULE_FAMILIES,
    OpKind,
    one_f_one_b_rr_schedule,
    schedule_for_family,
    split_backward_schedule,
)
from repro.core.topology import cluster_a
from repro.profiler import analytic_profile
from repro.sim.executor import SimOptions, simulate
from repro.sim.strategies import simulate_partition

from tests.test_sim_engine_equiv import SCENARIOS, assert_engines_identical

GNMT = analytic_profile("gnmt16")
TOPO_16 = cluster_a(4)
# Probed straight-pipeline feasibility floors for gnmt16 @ 16 workers:
# recompute off needs ~2.31 GB/worker, recompute on ~2.11 GB.  2.2 GB sits
# between them — the pinned cap the perf workload gates on.
PINNED_CAP = 2.2e9


# ----------------------------------------------------------------------
# Schedule family: structure and no-op guarantees
# ----------------------------------------------------------------------

class TestScheduleFamily:
    def test_families_registry(self):
        assert SCHEDULE_FAMILIES == ("1f1b", "2bp")

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_1f1b_family_is_the_same_object(self, scenario):
        """The no-op guard: family "1f1b" returns the exact input object
        for every existing engine-equivalence scenario — downstream code
        cannot observe that the family axis exists."""
        sched, _, _, _ = SCENARIOS[scenario]()
        assert schedule_for_family(sched, "1f1b") is sched

    def test_unknown_family_raises(self):
        sched, _, _, _ = SCENARIOS["straight_1f1b_16w"]()
        with pytest.raises(ValueError):
            schedule_for_family(sched, "zb-h1")

    def test_split_appends_w_after_every_backward(self):
        stages = [Stage(0, 10, 1), Stage(10, len(GNMT), 1)]
        sched = one_f_one_b_rr_schedule(stages, 6)
        split = split_backward_schedule(sched)
        assert split.backward_split and not sched.backward_split
        for worker, ops in split.worker_ops.items():
            for i, op in enumerate(ops):
                if op.kind is OpKind.BACKWARD:
                    nxt = ops[i + 1]
                    assert nxt.kind is OpKind.BACKWARD_W
                    assert (nxt.stage, nxt.minibatch) == (
                        op.stage, op.minibatch)
        b = sum(1 for ops in sched.worker_ops.values()
                for op in ops if op.kind is OpKind.BACKWARD)
        w = sum(1 for ops in split.worker_ops.values()
                for op in ops if op.kind is OpKind.BACKWARD_W)
        assert b == w > 0

    def test_double_split_raises(self):
        stages = [Stage(0, len(GNMT), 1)]
        split = split_backward_schedule(one_f_one_b_rr_schedule(stages, 2))
        with pytest.raises(ValueError):
            split_backward_schedule(split)


# ----------------------------------------------------------------------
# Engine twins: 2BP and per-stage recompute priced identically
# ----------------------------------------------------------------------

class TestEngineTwins:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_2bp_engines_identical(self, scenario):
        """Both engines stay bitwise twins on the backward-split form of
        every existing equivalence scenario."""
        sched, profile, topo, options = SCENARIOS[scenario]()
        assert_engines_identical(
            split_backward_schedule(sched), profile, topo, options)

    def test_per_stage_recompute_engines_identical(self):
        stages = [Stage(0, 8, 1, recompute=True), Stage(8, 16, 1),
                  Stage(16, len(GNMT), 14, recompute=True)]
        sched = one_f_one_b_rr_schedule(stages, 32)
        assert_engines_identical(sched, GNMT, TOPO_16, None)
        assert_engines_identical(
            split_backward_schedule(sched), GNMT, TOPO_16, None)

    def test_2bp_conserves_total_work(self):
        """Splitting backward moves work between ops, never creates or
        destroys it: per-worker busy time is conserved."""
        sched, profile, topo, options = SCENARIOS["straight_1f1b_16w"]()
        base = simulate(sched, profile, topo, options)
        split = simulate(split_backward_schedule(sched), profile, topo,
                         options)
        assert set(base.compute_time_per_worker) == set(
            split.compute_time_per_worker)
        for worker, busy in base.compute_time_per_worker.items():
            assert split.compute_time_per_worker[worker] == pytest.approx(
                busy, rel=1e-12, abs=1e-12)

    def test_2bp_strictly_shrinks_the_bubble(self):
        """Grad-weight work fills drain bubbles: total idle time (the 2BP
        paper's claim) strictly drops on a straight pipeline."""
        sched, profile, topo, options = SCENARIOS["straight_1f1b_16w"]()
        base = simulate(sched, profile, topo, options)
        split = simulate(split_backward_schedule(sched), profile, topo,
                         options)

        def bubble(sim):
            busy = sim.compute_time_per_worker.values()
            return sim.total_time * len(busy) - sum(busy)

        assert split.total_time < base.total_time
        assert bubble(split) < bubble(base)
        assert bubble(split) > 0

    def test_stage_recompute_adds_one_forward_to_backward(self):
        """A recompute-on stage's backward is priced at b + f — identical
        to the global ``recompute_activations`` option when every stage
        is flagged."""
        stages = [Stage(0, 8, 1), Stage(8, len(GNMT), 1)]
        flagged = [Stage(s.start, s.stop, s.replicas, recompute=True)
                   for s in stages]
        sched_flag = one_f_one_b_rr_schedule(flagged, 8)
        sched_plain = one_f_one_b_rr_schedule(stages, 8)
        via_stages = simulate(sched_flag, GNMT, TOPO_16, None)
        via_option = simulate(sched_plain, GNMT, TOPO_16,
                              SimOptions(sync_mode="pipedream",
                                         recompute_activations=True))
        assert via_stages.records == via_option.records
        assert via_stages.total_time == via_option.total_time


# ----------------------------------------------------------------------
# Planner: recompute=None is a bitwise no-op; the pinned feasibility shift
# ----------------------------------------------------------------------

class TestPlannerRecompute:
    def test_recompute_none_is_default_namespace(self):
        default = PipeDreamOptimizer(GNMT, TOPO_16)
        explicit = PipeDreamOptimizer(GNMT, TOPO_16, recompute=None)
        assert default._cache_ns == explicit._cache_ns
        a, b = default.solve(), explicit.solve()
        assert a.stages == b.stages
        assert a.slowest_stage_time == b.slowest_stage_time

    def test_auto_without_limit_normalizes_to_default(self):
        """recompute='auto' with no cap can never fire, so it shares the
        default solver namespace (bitwise-identical tables)."""
        default = PipeDreamOptimizer(GNMT, TOPO_16)
        auto = PipeDreamOptimizer(GNMT, TOPO_16, recompute="auto")
        assert not auto._recompute_auto
        assert default._cache_ns == auto._cache_ns
        a, b = default.solve(), auto.solve()
        assert a.stages == b.stages
        assert a.slowest_stage_time == b.slowest_stage_time

    def test_invalid_recompute_rejected(self):
        with pytest.raises(ValueError):
            PipeDreamOptimizer(GNMT, TOPO_16, recompute="always")
        with pytest.raises(ValueError):
            PipeDreamOptimizer(GNMT, TOPO_16, recompute="auto",
                               memory_refine=False)

    def test_generous_limit_prefers_stash_everything(self):
        """Under a non-binding cap the auto solver must emit the exact
        recompute-free plan: the prefer-off rule keeps generous limits
        bitwise-identical."""
        free = PipeDreamOptimizer(GNMT, TOPO_16).solve()
        capped = PipeDreamOptimizer(
            GNMT, TOPO_16, memory_limit_bytes=1e12, recompute="auto"
        ).solve()
        assert capped.stages == free.stages
        assert not any(s.recompute for s in capped.stages)
        assert capped.slowest_stage_time == free.slowest_stage_time

    def test_pinned_feasibility_shift(self):
        """The acceptance pin: a straight gnmt16 pipeline under the
        2.2 GB cap is infeasible stash-everything, feasible with the
        planner checkpointing at least one stage."""
        with pytest.raises(RuntimeError):
            PipeDreamOptimizer(
                GNMT, TOPO_16, memory_limit_bytes=PINNED_CAP,
                allow_replication=False,
            ).solve()
        plan = PipeDreamOptimizer(
            GNMT, TOPO_16, memory_limit_bytes=PINNED_CAP,
            allow_replication=False, recompute="auto",
        ).solve()
        assert any(s.recompute for s in plan.stages)
        assert max(plan.memory_bytes) <= PINNED_CAP

    def test_pinned_shift_twins_bitwise_equal(self):
        plans = [
            PipeDreamOptimizer(
                GNMT, TOPO_16, memory_limit_bytes=PINNED_CAP,
                allow_replication=False, recompute="auto",
                vectorize=vectorize,
            ).solve()
            for vectorize in (True, False)
        ]
        assert plans[0].stages == plans[1].stages
        assert plans[0].slowest_stage_time == plans[1].slowest_stage_time
        assert plans[0].memory_bytes == plans[1].memory_bytes

    def test_warm_started_recompute_solve_matches_cold(self):
        context = SolverContext(GNMT)
        kwargs = dict(memory_limit_bytes=PINNED_CAP,
                      allow_replication=False, recompute="auto")
        cold = PipeDreamOptimizer(GNMT, TOPO_16, **kwargs).solve()
        # Warm the context with a *default* solve first: the recompute
        # namespace must not collide with the default one.
        PipeDreamOptimizer(GNMT, TOPO_16, context=context).solve()
        warm = PipeDreamOptimizer(
            GNMT, TOPO_16, context=context, **kwargs).solve()
        again = PipeDreamOptimizer(
            GNMT, TOPO_16, context=context, **kwargs).solve()
        for other in (warm, again):
            assert cold.stages == other.stages
            assert cold.slowest_stage_time == other.slowest_stage_time
            assert cold.memory_bytes == other.memory_bytes


# ----------------------------------------------------------------------
# Strategy driver: the family axis end to end
# ----------------------------------------------------------------------

class TestSimulatePartitionFamily:
    def test_default_family_is_noop(self):
        stages = [Stage(0, 10, 1), Stage(10, len(GNMT), 14)]
        base = simulate_partition(GNMT, TOPO_16, stages, num_minibatches=16)
        explicit = simulate_partition(
            GNMT, TOPO_16, stages, num_minibatches=16,
            schedule_family="1f1b")
        assert base.sim.records == explicit.sim.records
        assert base.throughput == explicit.throughput

    def test_2bp_faster_epoch_same_memory(self):
        stages = [Stage(0, 8, 1), Stage(8, 16, 1),
                  Stage(16, len(GNMT), 14)]
        base = simulate_partition(GNMT, TOPO_16, stages, num_minibatches=24)
        split = simulate_partition(
            GNMT, TOPO_16, stages, num_minibatches=24,
            schedule_family="2bp")
        assert split.epoch_time < base.epoch_time
        assert split.memory_per_worker == base.memory_per_worker


# ----------------------------------------------------------------------
# Runtime: 2BP and per-stage recompute are semantic no-ops
# ----------------------------------------------------------------------

class TestRuntime2BP:
    def _task(self):
        from repro.data import make_classification_data

        X, y = make_classification_data(num_samples=96, seed=3)
        return [(X[i * 16:(i + 1) * 16], y[i * 16:(i + 1) * 16])
                for i in range(6)]

    def _run(self, stages, family, batches):
        from repro.models import build_mlp
        from repro.nn import CrossEntropyLoss
        from repro.optim import SGD
        from repro.runtime import PipelineTrainer

        model = build_mlp(rng=np.random.default_rng(11))
        trainer = PipelineTrainer(
            model, stages, CrossEntropyLoss(),
            lambda ps: SGD(ps, lr=0.1),
        )
        loss = trainer.train_minibatches(batches, schedule_family=family)
        trainer.consolidated_model()
        return loss, {n: p.data.copy() for n, p in model.named_parameters()}

    @pytest.mark.parametrize("stages", [
        [Stage(0, 2, 1), Stage(2, 3, 1)],
        [Stage(0, 2, 2), Stage(2, 3, 1)],
        [Stage(0, 2, 1, recompute=True), Stage(2, 3, 1)],
    ], ids=["straight", "replicated", "recompute"])
    def test_2bp_training_bitwise_equals_1f1b(self, stages):
        batches = self._task()
        loss_a, weights_a = self._run(stages, "1f1b", batches)
        loss_b, weights_b = self._run(stages, "2bp", batches)
        assert loss_a == loss_b
        for name in weights_a:
            assert np.array_equal(weights_a[name], weights_b[name]), name

    def test_per_stage_recompute_bitwise_equals_stashing(self):
        batches = self._task()
        plain = [Stage(0, 2, 1), Stage(2, 3, 1)]
        flagged = [Stage(0, 2, 1, recompute=True),
                   Stage(2, 3, 1, recompute=True)]
        loss_a, weights_a = self._run(plain, "1f1b", batches)
        loss_b, weights_b = self._run(flagged, "1f1b", batches)
        assert loss_a == loss_b
        for name in weights_a:
            assert np.array_equal(weights_a[name], weights_b[name]), name
