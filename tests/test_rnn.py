"""LSTM cell and sequence LSTM."""

import numpy as np
import pytest

from repro.autodiff import Tensor, gradcheck
from repro.nn import LSTM, LSTMCell


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = LSTMCell(4, 6, rng=rng)
        h, (h2, c2) = cell(Tensor(rng.standard_normal((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)
        assert h2.shape == (3, 6) and c2.shape == (3, 6)
        assert h is h2

    def test_param_count(self, rng):
        cell = LSTMCell(4, 6, rng=rng)
        assert cell.num_parameters() == 4 * 6 * 4 + 4 * 6 * 6 + 4 * 6

    def test_gradcheck_single_step(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)

        def fn(x):
            out, _ = cell(x, cell.initial_state(2))
            return (out ** 2).sum()

        assert gradcheck(fn, [x], atol=1e-4)

    def test_cell_state_evolves(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        state = cell.initial_state(2)
        _, state1 = cell(Tensor(rng.standard_normal((2, 3))), state)
        _, state2 = cell(Tensor(rng.standard_normal((2, 3))), state1)
        assert not np.allclose(state1[1].data, state2[1].data)

    def test_initial_state_zero(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        h, c = cell.initial_state(5)
        assert (h.data == 0).all() and (c.data == 0).all()


class TestSequenceLSTM:
    def test_output_shape(self, rng):
        lstm = LSTM(4, 6, rng=rng)
        out = lstm(Tensor(rng.standard_normal((2, 7, 4))))
        assert out.shape == (2, 7, 6)

    def test_gradient_flows_to_weights(self, rng):
        lstm = LSTM(3, 4, rng=rng)
        out = lstm(Tensor(rng.standard_normal((2, 5, 3))))
        (out ** 2).mean().backward()
        assert lstm.cell.weight_ih.grad is not None
        assert lstm.cell.weight_hh.grad is not None
        assert np.abs(lstm.cell.weight_hh.grad).max() > 0

    def test_gradcheck_input(self, rng):
        lstm = LSTM(2, 3, rng=rng)
        x = Tensor(rng.standard_normal((1, 3, 2)), requires_grad=True)
        assert gradcheck(lambda x: (lstm(x) ** 2).mean(), [x], atol=1e-4)

    def test_gradcheck_weights(self, rng):
        lstm = LSTM(2, 2, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 2)))
        w = lstm.cell.weight_ih
        assert gradcheck(lambda w: (lstm(x) ** 2).mean(), [w], atol=1e-4)

    def test_deterministic(self, rng):
        lstm = LSTM(3, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 3)))
        np.testing.assert_array_equal(lstm(x).data, lstm(x).data)

    def test_temporal_dependence(self, rng):
        """Later outputs must depend on earlier inputs (recurrence works)."""
        lstm = LSTM(2, 3, rng=rng)
        x = rng.standard_normal((1, 4, 2))
        out1 = lstm(Tensor(x)).data
        x2 = x.copy()
        x2[0, 0, :] += 1.0  # perturb the first timestep
        out2 = lstm(Tensor(x2)).data
        assert not np.allclose(out1[0, -1], out2[0, -1])
