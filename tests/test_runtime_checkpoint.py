"""§4 checkpointing: per-stage saves, restart rules, fault injection."""

import numpy as np
import pytest

from repro.core.partition import Stage
from repro.data import make_classification_data
from repro.models import build_mlp
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.runtime import CheckpointManager, PipelineTrainer, SequentialTrainer

LOSS = CrossEntropyLoss()
STAGES = [Stage(0, 1, 1), Stage(1, 2, 1), Stage(2, 3, 1)]


@pytest.fixture
def task():
    X, y = make_classification_data(num_samples=96, seed=3)
    return [(X[i * 12 : (i + 1) * 12], y[i * 12 : (i + 1) * 12]) for i in range(8)]


def fresh_model(seed=21):
    return build_mlp(rng=np.random.default_rng(seed))


def make_trainer(model, replicated=False):
    stages = [Stage(0, 2, 2), Stage(2, 3, 1)] if replicated else STAGES
    return PipelineTrainer(model, stages, LOSS, lambda ps: SGD(ps, lr=0.05))


class TestCheckpointManager:
    def test_save_and_load_roundtrip(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        state = {"0.weight": np.arange(6.0).reshape(2, 3), "0.bias": np.ones(2)}
        manager.save_stage(0, 0, 3, state)
        loaded = manager.load_stage(0, 0, 3)
        assert set(loaded) == set(state)
        for name in state:
            np.testing.assert_array_equal(loaded[name], state[name])

    def test_adversarial_names_roundtrip(self, tmp_path):
        """The escape is reversible: names built from '.', '_', '/' and
        the escape letters themselves survive save/load unchanged — and
        the historical collision pair maps to distinct entries."""
        names = [
            "conv__1.w",
            "conv.1__w",  # collided with the previous under '.' -> '__'
            "a_d_b",
            "a.d.b",
            "block/0/weight",
            "_leading",
            "trailing_",
            "___",
            "d_s.d_s",
            "plain",
        ]
        state = {
            name: np.full(3, float(i)) for i, name in enumerate(names)
        }
        manager = CheckpointManager(str(tmp_path))
        manager.save_stage(0, 0, 0, state)
        loaded = manager.load_stage(0, 0, 0)
        assert set(loaded) == set(state)
        for name in names:
            np.testing.assert_array_equal(loaded[name], state[name])

    def test_escape_unescape_inverse(self):
        from repro.runtime.checkpoint import _escape_name, _unescape_name

        for name in ["x.y", "x__y", "x_dy", "a/b_c.d", "", "_", "__", "._/"]:
            escaped = _escape_name(name)
            assert "." not in escaped and "/" not in escaped
            assert _unescape_name(escaped) == name
        assert _escape_name("conv__1.w") != _escape_name("conv.1__w")

    def test_has_stage(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save_stage(1, 0, 2, {"w": np.zeros(2)})
        assert manager.has_stage(1, 0, 2)
        assert not manager.has_stage(1, 0, 3)

    def test_latest_complete_epoch(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        for epoch in (0, 1):
            for stage in (0, 1):
                manager.save_stage(stage, 0, epoch, {"w": np.zeros(1)})
        # Epoch 2: only stage 0 landed (simulated crash mid-checkpoint).
        manager.save_stage(0, 0, 2, {"w": np.zeros(1)})
        assert manager.latest_complete_epoch(2, [1, 1]) == 1

    def test_no_checkpoints(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        assert manager.latest_complete_epoch(2, [1, 1]) is None

    def test_replicated_stage_counts(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save_stage(0, 0, 0, {"w": np.zeros(1)})
        manager.save_stage(0, 1, 0, {"w": np.zeros(1)})
        # Stage 1's replica missing: epoch incomplete.
        assert manager.latest_complete_epoch(2, [2, 1]) is None
        manager.save_stage(1, 0, 0, {"w": np.zeros(1)})
        assert manager.latest_complete_epoch(2, [2, 1]) == 0

    def test_list_checkpoints(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save_stage(0, 0, 0, {"w": np.zeros(1)})
        assert manager.list_checkpoints() == ["stage0_replica0_epoch0.npz"]


class TestTrainerCheckpointing:
    def test_restore_resumes_exact_weights(self, tmp_path, task):
        manager = CheckpointManager(str(tmp_path))
        trainer = make_trainer(fresh_model())
        trainer.train_minibatches(task)
        trainer.save_checkpoint(manager, epoch=0)
        reference = {
            name: p.data.copy()
            for name, p in trainer.consolidated_model().named_parameters()
        }

        # A "new process": fresh trainer with different init, restored.
        restarted = make_trainer(fresh_model(seed=99))
        assert restarted.restore_checkpoint(manager) == 0
        restored = restarted.consolidated_model()
        for name, p in restored.named_parameters():
            np.testing.assert_allclose(p.data, reference[name], err_msg=name)

    def test_restore_none_when_empty(self, tmp_path):
        trainer = make_trainer(fresh_model())
        assert trainer.restore_checkpoint(CheckpointManager(str(tmp_path))) is None

    def test_crash_mid_epoch_rolls_back(self, tmp_path, task):
        """Fault injection: epoch 1's checkpoint is partially written."""
        manager = CheckpointManager(str(tmp_path))
        trainer = make_trainer(fresh_model())
        trainer.train_minibatches(task)
        trainer.save_checkpoint(manager, epoch=0)
        epoch0 = {
            name: p.data.copy()
            for name, p in trainer.consolidated_model().named_parameters()
        }
        trainer.train_minibatches(task)
        # Simulate a crash: only stage 0's epoch-1 checkpoint lands.
        manager.save_stage(0, 0, 1, trainer.replicas[0][0].store._latest.state)

        restarted = make_trainer(fresh_model(seed=123))
        assert restarted.restore_checkpoint(manager) == 0  # rolled back
        for name, p in restarted.consolidated_model().named_parameters():
            np.testing.assert_allclose(p.data, epoch0[name], err_msg=name)

    def test_training_continues_after_restore(self, tmp_path, task):
        manager = CheckpointManager(str(tmp_path))
        trainer = make_trainer(fresh_model())
        loss0 = trainer.train_minibatches(task)
        trainer.save_checkpoint(manager, epoch=0)

        restarted = make_trainer(fresh_model(seed=50))
        restarted.restore_checkpoint(manager)
        loss1 = restarted.train_minibatches(task)
        assert loss1 < loss0  # picks up where training left off

    def test_replicated_stage_checkpointing(self, tmp_path, task):
        manager = CheckpointManager(str(tmp_path))
        trainer = make_trainer(fresh_model(), replicated=True)
        trainer.train_minibatches(task)
        trainer.save_checkpoint(manager, epoch=0)
        restarted = make_trainer(fresh_model(seed=51), replicated=True)
        assert restarted.restore_checkpoint(manager) == 0
        # Replicas restored identically.
        a, b = restarted.replicas[0]
        for (name, pa), (_, pb) in zip(
            a.module.named_parameters(), b.module.named_parameters()
        ):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=name)

    def test_version_store_resets_after_restore(self, tmp_path, task):
        manager = CheckpointManager(str(tmp_path))
        trainer = make_trainer(fresh_model())
        trainer.train_minibatches(task)
        trainer.save_checkpoint(manager, epoch=0)
        restarted = make_trainer(fresh_model(seed=52))
        restarted.restore_checkpoint(manager)
        assert restarted.stage_versions() == [0, 0, 0]
