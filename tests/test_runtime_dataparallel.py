"""BSP and ASP data-parallel runtimes."""

import numpy as np
import pytest

from repro.data import make_classification_data
from repro.models import build_mlp
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.runtime import ASPTrainer, BSPTrainer, SequentialTrainer


LOSS = CrossEntropyLoss()


@pytest.fixture
def task():
    X, y = make_classification_data(num_samples=128, seed=2)
    return [(X[i * 16 : (i + 1) * 16], y[i * 16 : (i + 1) * 16]) for i in range(8)]


def fresh_model(seed=11):
    return build_mlp(rng=np.random.default_rng(seed))


def assert_same_weights(a, b, atol=1e-12):
    for (name, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        np.testing.assert_allclose(pa.data, pb.data, atol=atol, err_msg=name)


class TestBSP:
    def test_single_worker_equals_sequential(self, task):
        m_bsp, m_ref = fresh_model(), fresh_model()
        bsp = BSPTrainer(m_bsp, LOSS, lambda ps: SGD(ps, lr=0.1), num_workers=1)
        ref = SequentialTrainer(m_ref, LOSS, SGD(m_ref.parameters(), lr=0.1))
        bsp.train_epoch(task)
        ref.train_epoch(task)
        assert_same_weights(m_bsp, m_ref)

    def test_gradient_averaging_equals_combined_batch(self, task):
        """4 shards averaged == SGD on the concatenated global minibatch."""
        m_bsp, m_ref = fresh_model(), fresh_model()
        bsp = BSPTrainer(m_bsp, LOSS, lambda ps: SGD(ps, lr=0.1), num_workers=4)
        ref = SequentialTrainer(m_ref, LOSS, SGD(m_ref.parameters(), lr=0.1))
        shards = task[:4]
        bsp.train_step(shards)
        big_x = np.concatenate([x for x, _ in shards])
        big_y = np.concatenate([y for _, y in shards])
        ref.train_minibatch(big_x, big_y)
        assert_same_weights(m_bsp, m_ref, atol=1e-10)

    def test_wrong_shard_count_rejected(self, task):
        bsp = BSPTrainer(fresh_model(), LOSS, lambda ps: SGD(ps, lr=0.1), num_workers=4)
        with pytest.raises(ValueError):
            bsp.train_step(task[:2])

    def test_epoch_consumes_groups(self, task):
        bsp = BSPTrainer(fresh_model(), LOSS, lambda ps: SGD(ps, lr=0.1), num_workers=4)
        loss = bsp.train_epoch(task)  # 8 batches -> 2 sync steps
        assert np.isfinite(loss)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            BSPTrainer(fresh_model(), LOSS, lambda ps: SGD(ps, lr=0.1), num_workers=0)

    def test_converges(self, task):
        bsp = BSPTrainer(fresh_model(), LOSS, lambda ps: SGD(ps, lr=0.1), num_workers=2)
        losses = [bsp.train_epoch(task) for _ in range(6)]
        assert losses[-1] < 0.5 * losses[0]


class TestASP:
    def test_single_worker_equals_sequential(self, task):
        """With one worker there is no staleness at all."""
        m_asp, m_ref = fresh_model(), fresh_model()
        asp = ASPTrainer(m_asp, LOSS, lambda ps: SGD(ps, lr=0.1), num_workers=1)
        ref = SequentialTrainer(m_ref, LOSS, SGD(m_ref.parameters(), lr=0.1))
        asp.train_epoch(task)
        ref.train_epoch(task)
        assert_same_weights(m_asp, m_ref)

    def test_stale_gradients_differ_from_bsp(self, task):
        m_asp, m_seq = fresh_model(), fresh_model()
        asp = ASPTrainer(m_asp, LOSS, lambda ps: SGD(ps, lr=0.1), num_workers=4)
        seq = SequentialTrainer(m_seq, LOSS, SGD(m_seq.parameters(), lr=0.1))
        asp.train_epoch(task)
        seq.train_epoch(task)
        diffs = [
            np.abs(pa.data - pb.data).max()
            for (_, pa), (_, pb) in zip(m_asp.named_parameters(), m_seq.named_parameters())
        ]
        assert max(diffs) > 1e-9

    def test_still_converges_on_easy_task(self, task):
        asp = ASPTrainer(fresh_model(), LOSS, lambda ps: SGD(ps, lr=0.05), num_workers=4)
        losses = [asp.train_epoch(task) for _ in range(8)]
        assert losses[-1] < losses[0]

    def test_worker_snapshots_are_stale(self, task):
        """A worker's replica lags the server by other workers' pushes."""
        asp = ASPTrainer(fresh_model(), LOSS, lambda ps: SGD(ps, lr=0.1), num_workers=4)
        asp.train_step(*task[0])  # worker 0 pushes and pulls
        asp.train_step(*task[1])  # worker 1 pushes: worker 0 now stale
        w0 = dict(asp.worker_models[0].named_parameters())
        server = dict(asp.model.named_parameters())
        stale = any(
            not np.array_equal(w0[k].data, server[k].data) for k in server
        )
        assert stale

    def test_statistical_efficiency_worse_at_high_lr(self):
        """§5.2's ASP comparison: staleness hurts at aggressive step sizes."""
        X, y = make_classification_data(num_samples=256, seed=3, noise=1.0)
        batches = [(X[i * 16 : (i + 1) * 16], y[i * 16 : (i + 1) * 16]) for i in range(16)]
        lr = 0.8
        m_bsp, m_asp = fresh_model(5), fresh_model(5)
        bsp = BSPTrainer(m_bsp, LOSS, lambda ps: SGD(ps, lr=lr, momentum=0.9), num_workers=4)
        asp = ASPTrainer(m_asp, LOSS, lambda ps: SGD(ps, lr=lr, momentum=0.9), num_workers=4)
        bsp_loss = np.mean([bsp.train_epoch(batches) for _ in range(6)][-2:])
        asp_loss = np.mean([asp.train_epoch(batches) for _ in range(6)][-2:])
        assert asp_loss > bsp_loss * 0.8  # ASP no better, typically worse
