"""GPipe runtime: flush semantics and recomputation."""

import numpy as np
import pytest

from repro.core.partition import Stage
from repro.data import make_classification_data
from repro.models import build_mlp
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.runtime import GPipeTrainer, SequentialTrainer


LOSS = CrossEntropyLoss()


@pytest.fixture
def task():
    X, y = make_classification_data(num_samples=128, seed=4)
    return [(X[i * 16 : (i + 1) * 16], y[i * 16 : (i + 1) * 16]) for i in range(8)]


def fresh_model(seed=13):
    return build_mlp(rng=np.random.default_rng(seed))


def assert_same_weights(a, b, atol=1e-10):
    for (name, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        np.testing.assert_allclose(pa.data, pb.data, atol=atol, err_msg=name)


class TestGPipeSemantics:
    @pytest.mark.parametrize("micros", [1, 2, 4])
    def test_equals_sequential_sgd(self, task, micros):
        """Microbatch aggregation + flush == plain SGD on the minibatch."""
        m_gp, m_ref = fresh_model(), fresh_model()
        gp = GPipeTrainer(m_gp, [Stage(0, 3, 1)], LOSS,
                          lambda ps: SGD(ps, lr=0.1), num_microbatches=micros)
        ref = SequentialTrainer(m_ref, LOSS, SGD(m_ref.parameters(), lr=0.1))
        for x, y in task:
            gp.train_minibatch(x, y)
            ref.train_minibatch(x, y)
        assert_same_weights(m_gp, m_ref)

    def test_recompute_gives_identical_weights(self, task):
        m_plain, m_rec = fresh_model(), fresh_model()
        gp1 = GPipeTrainer(m_plain, [Stage(0, 3, 1)], LOSS,
                           lambda ps: SGD(ps, lr=0.1), num_microbatches=4)
        gp2 = GPipeTrainer(m_rec, [Stage(0, 3, 1)], LOSS,
                           lambda ps: SGD(ps, lr=0.1), num_microbatches=4,
                           recompute_activations=True)
        for x, y in task:
            gp1.train_minibatch(x, y)
            gp2.train_minibatch(x, y)
        assert_same_weights(m_plain, m_rec)

    def test_uneven_microbatches_weighted_correctly(self):
        """A minibatch of 10 into 4 microbatches (3+3+2+2) still equals SGD."""
        X, y = make_classification_data(num_samples=10, seed=9)
        m_gp, m_ref = fresh_model(), fresh_model()
        gp = GPipeTrainer(m_gp, [Stage(0, 3, 1)], LOSS,
                          lambda ps: SGD(ps, lr=0.1), num_microbatches=4)
        ref = SequentialTrainer(m_ref, LOSS, SGD(m_ref.parameters(), lr=0.1))
        gp.train_minibatch(X, y)
        ref.train_minibatch(X, y)
        assert_same_weights(m_gp, m_ref)

    def test_minibatch_too_small_rejected(self):
        X, y = make_classification_data(num_samples=2, seed=9)
        gp = GPipeTrainer(fresh_model(), [Stage(0, 3, 1)], LOSS,
                          lambda ps: SGD(ps, lr=0.1), num_microbatches=4)
        with pytest.raises(ValueError):
            gp.train_minibatch(X, y)

    def test_stage_coverage_validated(self):
        with pytest.raises(ValueError):
            GPipeTrainer(fresh_model(), [Stage(0, 2, 1)], LOSS,
                         lambda ps: SGD(ps, lr=0.1))

    def test_loss_is_sample_weighted_mean(self, task):
        gp = GPipeTrainer(fresh_model(), [Stage(0, 3, 1)], LOSS,
                          lambda ps: SGD(ps, lr=0.0), num_microbatches=2)
        ref = SequentialTrainer(fresh_model(), LOSS, SGD([p for p in fresh_model().parameters()], lr=0.0))
        x, y = task[0]
        loss_gp = gp.train_minibatch(x, y)
        m = fresh_model()
        loss_ref = LOSS(m(x), y).item()
        assert loss_gp == pytest.approx(loss_ref, rel=1e-9)

    def test_converges(self, task):
        gp = GPipeTrainer(fresh_model(), [Stage(0, 3, 1)], LOSS,
                          lambda ps: SGD(ps, lr=0.1), num_microbatches=4)
        losses = [gp.train_epoch(task) for _ in range(6)]
        assert losses[-1] < 0.5 * losses[0]
