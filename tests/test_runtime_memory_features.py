"""§3.3 memory-reduction features: activation recomputation and gradient
aggregation in the pipelined runtime."""

import numpy as np
import pytest

from repro.core.partition import Stage
from repro.data import make_classification_data, make_seq2seq_data
from repro.models import build_gnmt, build_mlp
from repro.nn import CrossEntropyLoss
from repro.optim import SGD, Adam
from repro.runtime import PipelineTrainer, SequentialTrainer

LOSS = CrossEntropyLoss()
STAGES = [Stage(0, 1, 1), Stage(1, 2, 1), Stage(2, 3, 1)]


@pytest.fixture
def task():
    X, y = make_classification_data(num_samples=96, seed=7)
    return [(X[i * 12 : (i + 1) * 12], y[i * 12 : (i + 1) * 12]) for i in range(8)]


def fresh_model(seed=31):
    return build_mlp(rng=np.random.default_rng(seed))


def assert_same_weights(a, b, atol=1e-10):
    for (name, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        np.testing.assert_allclose(pa.data, pb.data, atol=atol, err_msg=name)


class TestActivationRecomputation:
    def test_identical_weights_to_plain_pipeline(self, task):
        """Recomputing with the stashed version must not change training."""
        m_plain, m_rec = fresh_model(), fresh_model()
        plain = PipelineTrainer(m_plain, STAGES, LOSS, lambda ps: SGD(ps, lr=0.05))
        rec = PipelineTrainer(m_rec, STAGES, LOSS, lambda ps: SGD(ps, lr=0.05),
                              recompute_activations=True)
        plain.train_minibatches(task)
        rec.train_minibatches(task)
        assert_same_weights(plain.consolidated_model(), rec.consolidated_model())

    def test_identical_for_single_stage(self, task):
        m_rec, m_ref = fresh_model(), fresh_model()
        rec = PipelineTrainer(m_rec, [Stage(0, 3, 1)], LOSS,
                              lambda ps: SGD(ps, lr=0.05),
                              recompute_activations=True)
        ref = SequentialTrainer(m_ref, LOSS, SGD(m_ref.parameters(), lr=0.05))
        rec.train_minibatches(task)
        ref.train_epoch(task)
        assert_same_weights(rec.consolidated_model(), m_ref)

    def test_works_with_embedding_input(self):
        """Token-id (integer) inputs survive the recompute round trip."""
        model = build_gnmt(num_lstm_layers=2, vocab_size=10, hidden_size=8,
                           rng=np.random.default_rng(2))
        src, tgt = make_seq2seq_data(num_samples=32, seq_len=5, vocab_size=10)
        batches = [(src[i * 8 : (i + 1) * 8], tgt[i * 8 : (i + 1) * 8]) for i in range(4)]
        trainer = PipelineTrainer(
            model, [Stage(0, 2, 1), Stage(2, 4, 1)], LOSS,
            lambda ps: Adam(ps, lr=0.01), recompute_activations=True,
        )
        losses = [trainer.train_minibatches(batches) for _ in range(4)]
        assert losses[-1] < losses[0]

    def test_reduces_tracked_activation_memory(self, task):
        m_plain, m_rec = fresh_model(), fresh_model()
        plain = PipelineTrainer(m_plain, STAGES, LOSS, lambda ps: SGD(ps, lr=0.05))
        rec = PipelineTrainer(m_rec, STAGES, LOSS, lambda ps: SGD(ps, lr=0.05),
                              recompute_activations=True)
        plain.train_minibatches(task)
        rec.train_minibatches(task)
        # The input stage stashes full tapes in one case, raw inputs in the
        # other: its tracked peak must drop.
        assert rec.stats.peak_memory_bytes[0] < plain.stats.peak_memory_bytes[0]

    def test_works_with_vertical_sync(self, task):
        m = fresh_model()
        trainer = PipelineTrainer(m, STAGES, LOSS, lambda ps: SGD(ps, lr=0.05),
                                  policy="vertical_sync",
                                  recompute_activations=True)
        losses = [trainer.train_minibatches(task) for _ in range(3)]
        assert losses[-1] < losses[0]


class TestGradientAccumulation:
    def test_single_stage_matches_large_batch_sgd(self, task):
        """Accumulating k rounds on one stage == SGD on k-batch averages."""
        m_acc, m_ref = fresh_model(), fresh_model()
        acc = PipelineTrainer(m_acc, [Stage(0, 3, 1)], LOSS,
                              lambda ps: SGD(ps, lr=0.05),
                              gradient_accumulation=2)
        ref = SequentialTrainer(m_ref, LOSS, SGD(m_ref.parameters(), lr=0.05))
        acc.train_minibatches(task)
        # Reference: one update per two minibatches, gradient averaged.
        for i in range(0, len(task), 2):
            (x1, y1), (x2, y2) = task[i], task[i + 1]
            big_x = np.concatenate([x1, x2])
            big_y = np.concatenate([y1, y2])
            ref.train_minibatch(big_x, big_y)
        assert_same_weights(acc.consolidated_model(), m_ref)

    def test_fewer_weight_versions(self, task):
        m1, m2 = fresh_model(), fresh_model()
        per_batch = PipelineTrainer(m1, STAGES, LOSS, lambda ps: SGD(ps, lr=0.05))
        accumulated = PipelineTrainer(m2, STAGES, LOSS, lambda ps: SGD(ps, lr=0.05),
                                      gradient_accumulation=4)
        per_batch.train_minibatches(task)
        accumulated.train_minibatches(task)
        assert per_batch.stage_versions() == [8, 8, 8]
        assert accumulated.stage_versions() == [2, 2, 2]

    def test_partial_tail_flushes(self, task):
        """A trailing group smaller than the accumulation window still
        applies its gradients (no silent loss of the last minibatches)."""
        m = fresh_model()
        trainer = PipelineTrainer(m, [Stage(0, 3, 1)], LOSS,
                                  lambda ps: SGD(ps, lr=0.05),
                                  gradient_accumulation=3)
        trainer.train_minibatches(task)  # 8 batches: updates after 3, 6, 8
        assert trainer.stage_versions() == [3]

    def test_invalid_accumulation_rejected(self, task):
        with pytest.raises(ValueError):
            PipelineTrainer(fresh_model(), STAGES, LOSS,
                            lambda ps: SGD(ps, lr=0.05),
                            gradient_accumulation=0)

    def test_still_converges(self, task):
        trainer = PipelineTrainer(fresh_model(), STAGES, LOSS,
                                  lambda ps: SGD(ps, lr=0.1),
                                  gradient_accumulation=2)
        losses = [trainer.train_minibatches(task) for _ in range(6)]
        assert losses[-1] < 0.5 * losses[0]


class TestTwoBufferedWeights:
    """PipeDream-2BW extension: at most two live weight versions."""

    def test_live_versions_bounded_by_two(self, task):
        model = fresh_model()
        trainer = PipelineTrainer.two_buffered(
            model, STAGES, LOSS, lambda ps: SGD(ps, lr=0.05))
        for _ in range(3):
            trainer.train_minibatches(task)
        assert max(trainer.stats.peak_live_versions.values()) <= 2

    def test_default_pipeline_exceeds_two(self, task):
        """Without 2BW, the input stage stashes one version per in-flight
        minibatch (3 here), confirming the bound above is not vacuous."""
        trainer = PipelineTrainer(fresh_model(), STAGES, LOSS,
                                  lambda ps: SGD(ps, lr=0.05))
        trainer.train_minibatches(task)
        assert trainer.stats.peak_live_versions[0] > 2

    def test_two_buffered_converges(self, task):
        trainer = PipelineTrainer.two_buffered(
            fresh_model(), STAGES, LOSS, lambda ps: SGD(ps, lr=0.1))
        losses = [trainer.train_minibatches(task) for _ in range(6)]
        assert losses[-1] < 0.6 * losses[0]

    def test_accumulation_window_is_warmup_depth(self, task):
        trainer = PipelineTrainer.two_buffered(
            fresh_model(), STAGES, LOSS, lambda ps: SGD(ps, lr=0.05))
        assert trainer.gradient_accumulation == 3  # 3-stage straight pipeline
