"""PipeDream runtime: gradient equivalences, staleness semantics, policies."""

import numpy as np
import pytest

from repro.core.partition import Stage
from repro.data import make_classification_data
from repro.models import build_mlp
from repro.nn import CrossEntropyLoss
from repro.optim import Adam, SGD
from repro.runtime import PipelineTrainer, SequentialTrainer


@pytest.fixture
def task():
    X, y = make_classification_data(num_samples=128, seed=1)
    batches = [(X[i * 16 : (i + 1) * 16], y[i * 16 : (i + 1) * 16]) for i in range(8)]
    return batches


def fresh_model(seed=7):
    return build_mlp(rng=np.random.default_rng(seed))


def assert_same_weights(a, b, atol=1e-12):
    for (name, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        np.testing.assert_allclose(pa.data, pb.data, atol=atol, err_msg=name)


LOSS = CrossEntropyLoss()


def sgd_factory(lr=0.1):
    return lambda params: SGD(params, lr=lr)


class TestSequentialEquivalence:
    def test_single_stage_bitwise_equal_to_sgd(self, task):
        m_ref, m_pipe = fresh_model(), fresh_model()
        ref = SequentialTrainer(m_ref, LOSS, SGD(m_ref.parameters(), lr=0.1))
        pipe = PipelineTrainer(m_pipe, [Stage(0, 3, 1)], LOSS, sgd_factory())
        l_ref = ref.train_epoch(task)
        l_pipe = pipe.train_minibatches(task)
        pipe.consolidated_model()
        assert l_ref == pytest.approx(l_pipe)
        assert_same_weights(m_ref, m_pipe)

    def test_single_stage_equal_with_momentum(self, task):
        m_ref, m_pipe = fresh_model(), fresh_model()
        ref = SequentialTrainer(m_ref, LOSS, SGD(m_ref.parameters(), lr=0.05, momentum=0.9))
        pipe = PipelineTrainer(
            m_pipe, [Stage(0, 3, 1)], LOSS,
            lambda ps: SGD(ps, lr=0.05, momentum=0.9),
        )
        ref.train_epoch(task)
        pipe.train_minibatches(task)
        pipe.consolidated_model()
        assert_same_weights(m_ref, m_pipe)

    def test_single_stage_equal_with_adam(self, task):
        m_ref, m_pipe = fresh_model(), fresh_model()
        ref = SequentialTrainer(m_ref, LOSS, Adam(m_ref.parameters(), lr=0.01))
        pipe = PipelineTrainer(m_pipe, [Stage(0, 3, 1)], LOSS,
                               lambda ps: Adam(ps, lr=0.01))
        ref.train_epoch(task)
        pipe.train_minibatches(task)
        pipe.consolidated_model()
        assert_same_weights(m_ref, m_pipe, atol=1e-10)


class TestStalenessSemantics:
    """The §3.3 weight-version formulas, verified against recorded versions."""

    def test_stashing_version_formula(self, task):
        """Stage s's forward of minibatch b uses w^(b - (n-1-s)) (clamped)."""
        n = 3
        pipe = PipelineTrainer(
            fresh_model(),
            [Stage(0, 1, 1), Stage(1, 2, 1), Stage(2, 3, 1)],
            LOSS, sgd_factory(0.05),
        )
        pipe.train_minibatches(task)
        for b in range(len(task)):
            for s in range(n):
                expected = max(0, b - (n - 1 - s))
                assert pipe.stats.forward_versions[(s, b)] == expected

    def test_vertical_sync_version_formula(self, task):
        """All stages use w^(b - n + 1): the version pinned at the input."""
        n = 3
        pipe = PipelineTrainer(
            fresh_model(),
            [Stage(0, 1, 1), Stage(1, 2, 1), Stage(2, 3, 1)],
            LOSS, sgd_factory(0.05), policy="vertical_sync",
        )
        pipe.train_minibatches(task)
        for b in range(len(task)):
            versions = {pipe.stats.forward_versions[(s, b)] for s in range(n)}
            assert versions == {max(0, b - n + 1)}

    def test_naive_policy_differs_from_stashing(self, task):
        """Without stashing, backward sees mutated weights: different result."""
        m_stash, m_naive = fresh_model(), fresh_model()
        stages = [Stage(0, 1, 1), Stage(1, 2, 1), Stage(2, 3, 1)]
        p_stash = PipelineTrainer(m_stash, stages, LOSS, sgd_factory(0.05))
        p_naive = PipelineTrainer(m_naive, stages, LOSS, sgd_factory(0.05),
                                  policy="none")
        p_stash.train_minibatches(task)
        p_naive.train_minibatches(task)
        p_stash.consolidated_model()
        p_naive.consolidated_model()
        diffs = [
            np.abs(pa.data - pb.data).max()
            for (_, pa), (_, pb) in zip(m_stash.named_parameters(), m_naive.named_parameters())
        ]
        assert max(diffs) > 1e-8

    def test_naive_requires_sgd(self, task):
        with pytest.raises(ValueError):
            PipelineTrainer(
                fresh_model(), [Stage(0, 3, 1)], LOSS,
                lambda ps: Adam(ps, lr=0.01), policy="none",
            )

    def test_two_stage_pipeline_matches_explicit_delayed_sgd(self, task):
        """End-to-end check of w(t+1) = w(t) - lr * grad(w1^(t-1), w2^(t)).

        A hand-rolled delayed-gradient simulator reproduces the pipelined
        trainer's weights exactly for a 2-stage straight pipeline.
        """
        import copy

        from repro.autodiff.engine import Tensor

        m_pipe = fresh_model()
        reference = copy.deepcopy(m_pipe)
        stages = [Stage(0, 2, 1), Stage(2, 3, 1)]
        pipe = PipelineTrainer(m_pipe, stages, LOSS, sgd_factory(0.05))
        pipe.train_minibatches(task)
        pipe.consolidated_model()

        # Reference implementing the §3.3 update directly: with n = 2 stages,
        #   w(t+1) = w(t) - lr * grad f(w0^(t-1), w1^(t))
        # i.e. stage 0's forward of minibatch b binds version v_{max(0,b-1)}
        # while stage 1 always binds the latest version v_b.
        lr = 0.05
        stage0 = reference.stage_module(0, 2)
        stage1 = reference.stage_module(2, 3)
        s0_params = list(stage0.named_parameters())
        s1_params = list(stage1.named_parameters())
        s0_versions = [{k: p.data.copy() for k, p in s0_params}]
        for b, (x, y) in enumerate(task):
            latest = {k: p.data.copy() for k, p in s0_params}
            # Bind stage 0 to the delayed version for the forward/backward.
            delayed = s0_versions[max(0, b - 1)]
            for k, p in s0_params:
                p.data = delayed[k]
            h = stage0(Tensor(np.asarray(x)))
            h_detached = Tensor(h.data, requires_grad=True)
            out = stage1(h_detached)
            loss = LOSS(out, y)
            stage0.zero_grad()
            stage1.zero_grad()
            loss.backward()
            for k, p in s1_params:  # stage 1 updates immediately
                p.data = p.data - lr * p.grad
            h.backward(h_detached.grad)
            # Stage 0's gradient (valid at the delayed version) applies to
            # the latest weights, producing version v_{b+1}.
            for k, p in s0_params:
                p.data = latest[k] - lr * p.grad
            s0_versions.append({k: p.data.copy() for k, p in s0_params})
        for (name, pa), (_, pb) in zip(m_pipe.named_parameters(), reference.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-10, err_msg=name)


class TestReplication:
    def test_replicas_stay_synchronized(self, task):
        pipe = PipelineTrainer(
            fresh_model(), [Stage(0, 2, 2), Stage(2, 3, 1)], LOSS, sgd_factory()
        )
        pipe.train_minibatches(task)
        a, b = pipe.replicas[0]
        for (name, pa), (_, pb) in zip(
            a.module.named_parameters(), b.module.named_parameters()
        ):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-12, err_msg=name)

    def test_replicated_pipeline_trains(self, task):
        pipe = PipelineTrainer(
            fresh_model(), [Stage(0, 2, 2), Stage(2, 3, 1)], LOSS, sgd_factory()
        )
        losses = [pipe.train_minibatches(task) for _ in range(5)]
        assert losses[-1] < 0.5 * losses[0]

    def test_three_way_replication_trains(self, task):
        pipe = PipelineTrainer(
            fresh_model(), [Stage(0, 2, 3), Stage(2, 3, 1)], LOSS, sgd_factory()
        )
        losses = [pipe.train_minibatches(task) for _ in range(5)]
        assert losses[-1] < losses[0]

    def test_stage_versions_advance_per_round(self, task):
        pipe = PipelineTrainer(
            fresh_model(), [Stage(0, 2, 2), Stage(2, 3, 1)], LOSS, sgd_factory()
        )
        pipe.train_minibatches(task)
        # Stage 0 syncs once per round of 2 minibatches: 4 versions for 8
        # minibatches; stage 1 updates per minibatch: 8 versions.
        assert pipe.stage_versions() == [4, 8]


class TestDiagnostics:
    def test_memory_tracked_per_worker(self, task):
        pipe = PipelineTrainer(
            fresh_model(),
            [Stage(0, 1, 1), Stage(1, 2, 1), Stage(2, 3, 1)],
            LOSS, sgd_factory(),
        )
        pipe.train_minibatches(task)
        assert len(pipe.stats.peak_memory_bytes) == 3
        assert all(v > 0 for v in pipe.stats.peak_memory_bytes.values())

    def test_input_stage_holds_more_versions(self, task):
        pipe = PipelineTrainer(
            fresh_model(),
            [Stage(0, 1, 1), Stage(1, 2, 1), Stage(2, 3, 1)],
            LOSS, sgd_factory(),
        )
        pipe.train_minibatches(task)
        mem = pipe.stats.peak_memory_bytes
        assert mem[0] > mem[2] * 0  # both recorded; detailed ratio below
        # More in-flight minibatches at the input stage => more stashes.
        # (fc1 and head have different sizes; compare version counts instead)

    def test_losses_recorded_per_minibatch(self, task):
        pipe = PipelineTrainer(fresh_model(), [Stage(0, 3, 1)], LOSS, sgd_factory())
        pipe.train_minibatches(task)
        assert len(pipe.stats.losses) == len(task)

    def test_stage_coverage_validated(self, task):
        with pytest.raises(ValueError):
            PipelineTrainer(fresh_model(), [Stage(0, 2, 1)], LOSS, sgd_factory())

    def test_convergence_stashing_close_to_sequential(self, task):
        """Figure 11's shape: stashing tracks sequential SGD per epoch."""
        m_seq, m_pipe = fresh_model(), fresh_model()
        seq = SequentialTrainer(m_seq, LOSS, SGD(m_seq.parameters(), lr=0.05))
        pipe = PipelineTrainer(
            m_pipe, [Stage(0, 1, 1), Stage(1, 2, 1), Stage(2, 3, 1)],
            LOSS, sgd_factory(0.05),
        )
        seq_losses = [seq.train_epoch(task) for _ in range(6)]
        pipe_losses = [pipe.train_minibatches(task) for _ in range(6)]
        assert pipe_losses[-1] < 1.5 * seq_losses[-1] + 0.05
