"""The threaded (one OS thread per worker) pipeline runtime."""

import numpy as np
import pytest

from repro.core.partition import Stage
from repro.data import make_classification_data
from repro.models import build_mlp
from repro.nn import CrossEntropyLoss
from repro.optim import SGD
from repro.runtime import PipelineTrainer, ThreadedPipelineTrainer
from repro.runtime.threaded import MessageBoard, _RoundSync

LOSS = CrossEntropyLoss()
STRAIGHT = [Stage(0, 1, 1), Stage(1, 2, 1), Stage(2, 3, 1)]


@pytest.fixture
def task():
    X, y = make_classification_data(num_samples=96, seed=3)
    return [(X[i * 12 : (i + 1) * 12], y[i * 12 : (i + 1) * 12]) for i in range(8)]


def fresh_model(seed=7):
    return build_mlp(rng=np.random.default_rng(seed))


def assert_same_weights(a, b):
    for (name, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        np.testing.assert_array_equal(pa.data, pb.data, err_msg=name)


class TestMessageBoard:
    def test_put_then_get(self):
        board = MessageBoard()
        board.put(("x",), 42)
        assert board.get(("x",)) == 42

    def test_get_blocks_until_put(self):
        import threading

        board = MessageBoard()
        result = []

        def consumer():
            result.append(board.get(("late",), timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        board.put(("late",), "hello")
        thread.join(timeout=5.0)
        assert result == ["hello"]

    def test_timeout(self):
        board = MessageBoard()
        with pytest.raises(TimeoutError):
            board.get(("never",), timeout=0.05)

    def test_fail_wakes_waiters(self):
        board = MessageBoard()
        board.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            board.get(("anything",), timeout=5.0)


class TestRoundSync:
    def test_single_member_immediate(self):
        sync = _RoundSync()
        grads = {"w": np.ones(2)}
        out = sync.submit(0, grads, members=1)
        np.testing.assert_array_equal(out["w"], np.ones(2))

    def test_two_members_averaged(self):
        import threading

        sync = _RoundSync()
        results = {}

        def member(name, value):
            results[name] = sync.submit(0, {"w": np.full(2, value)}, members=2,
                                        timeout=5.0)

        t1 = threading.Thread(target=member, args=("a", 1.0))
        t2 = threading.Thread(target=member, args=("b", 3.0))
        t1.start(); t2.start(); t1.join(5.0); t2.join(5.0)
        np.testing.assert_array_equal(results["a"]["w"], np.full(2, 2.0))
        np.testing.assert_array_equal(results["b"]["w"], np.full(2, 2.0))

    def test_timeout_on_missing_member(self):
        sync = _RoundSync()
        with pytest.raises(TimeoutError):
            sync.submit(0, {"w": np.ones(1)}, members=2, timeout=0.05)


class TestThreadedTrainer:
    def test_bitwise_equal_to_logical_for_straight(self, task):
        m_logical, m_threaded = fresh_model(), fresh_model()
        logical = PipelineTrainer(m_logical, STRAIGHT, LOSS,
                                  lambda ps: SGD(ps, lr=0.05))
        threaded = ThreadedPipelineTrainer(m_threaded, STRAIGHT, LOSS,
                                           lambda ps: SGD(ps, lr=0.05))
        l1 = logical.train_minibatches(task)
        l2 = threaded.train_minibatches(task)
        assert l1 == pytest.approx(l2)
        assert_same_weights(logical.consolidated_model(),
                            threaded.consolidated_model())

    def test_staleness_formula_holds_concurrently(self, task):
        threaded = ThreadedPipelineTrainer(fresh_model(), STRAIGHT, LOSS,
                                           lambda ps: SGD(ps, lr=0.05))
        threaded.train_minibatches(task)
        n = 3
        for b in range(len(task)):
            for s in range(n):
                expected = max(0, b - (n - 1 - s))
                assert threaded.stats.forward_versions[(s, b)] == expected

    def test_multiple_epochs(self, task):
        trainer = ThreadedPipelineTrainer(fresh_model(), STRAIGHT, LOSS,
                                          lambda ps: SGD(ps, lr=0.1))
        losses = [trainer.train_minibatches(task) for _ in range(4)]
        assert losses[-1] < losses[0]

    def test_replicated_stage_trains_and_stays_consistent(self, task):
        trainer = ThreadedPipelineTrainer(
            fresh_model(), [Stage(0, 2, 2), Stage(2, 3, 1)], LOSS,
            lambda ps: SGD(ps, lr=0.05))
        losses = [trainer.train_minibatches(task) for _ in range(3)]
        assert losses[-1] < losses[0]
        a, b = trainer.replicas[0]
        for (name, pa), (_, pb) in zip(
            a.module.named_parameters(), b.module.named_parameters()
        ):
            np.testing.assert_allclose(pa.data, pb.data, err_msg=name)

    def test_gradient_accumulation_matches_logical(self, task):
        m_logical, m_threaded = fresh_model(), fresh_model()
        logical = PipelineTrainer(m_logical, [Stage(0, 3, 1)], LOSS,
                                  lambda ps: SGD(ps, lr=0.05),
                                  gradient_accumulation=2)
        threaded = ThreadedPipelineTrainer(m_threaded, [Stage(0, 3, 1)], LOSS,
                                           lambda ps: SGD(ps, lr=0.05),
                                           gradient_accumulation=2)
        logical.train_minibatches(task)
        threaded.train_minibatches(task)
        assert_same_weights(logical.consolidated_model(),
                            threaded.consolidated_model())

    def test_vertical_sync_policy(self, task):
        trainer = ThreadedPipelineTrainer(fresh_model(), STRAIGHT, LOSS,
                                          lambda ps: SGD(ps, lr=0.05),
                                          policy="vertical_sync")
        trainer.train_minibatches(task)
        for b in range(2, len(task)):
            versions = {trainer.stats.forward_versions[(s, b)] for s in range(3)}
            assert len(versions) == 1  # all stages pin the same version

    def test_worker_failure_propagates(self, task):
        trainer = ThreadedPipelineTrainer(fresh_model(), STRAIGHT, LOSS,
                                          lambda ps: SGD(ps, lr=0.05),
                                          worker_timeout=5.0)
        # Poison one batch so the last stage's loss computation fails.
        bad = list(task)
        bad[3] = (bad[3][0], np.full_like(bad[3][1], 99))  # out-of-range class
        with pytest.raises(RuntimeError):
            trainer.train_minibatches(bad)
