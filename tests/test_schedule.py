"""1F1B / 1F1B-RR / GPipe / MP / DP schedule generation and validation."""

import pytest

from repro.core.partition import Stage
from repro.core.schedule import (
    Op,
    OpKind,
    Schedule,
    compute_noam,
    data_parallel_schedule,
    gpipe_schedule,
    model_parallel_schedule,
    one_f_one_b_rr_schedule,
    one_f_one_b_schedule,
    replica_minibatches,
    validate_schedule,
    warmup_count,
)


def op_pattern(schedule, worker, limit=None):
    ops = [o for o in schedule.worker_ops[worker] if o.kind != OpKind.UPDATE]
    if limit:
        ops = ops[:limit]
    return "".join(o.kind.value for o in ops)


class TestOneFOneB:
    def test_figure4_warmup_depths(self):
        """Stage s performs num_stages - s warmup forwards (Figure 4)."""
        sched = one_f_one_b_schedule(4, 12)
        for s in range(4):
            pattern = op_pattern(sched, s)
            warmup = len(pattern) - len(pattern.lstrip("F"))
            assert warmup == 4 - s

    def test_steady_state_alternates(self):
        sched = one_f_one_b_schedule(4, 12)
        for s in range(4):
            pattern = op_pattern(sched, s)
            steady = pattern[4 - s : -(4 - s)] if s < 4 else pattern
            # After warmup, strict BF alternation until the drain.
            assert "FF" not in steady
            assert "BBB" not in steady

    def test_last_stage_immediately_alternates(self):
        sched = one_f_one_b_schedule(4, 6)
        assert op_pattern(sched, 3, limit=6) == "FBFBFB"

    def test_all_ops_present(self):
        sched = one_f_one_b_schedule(3, 5)
        validate_schedule(sched)

    def test_updates_follow_backwards(self):
        sched = one_f_one_b_schedule(2, 4)
        for worker, ops in sched.worker_ops.items():
            for i, op in enumerate(ops):
                if op.kind == OpKind.UPDATE:
                    prev = ops[i - 1]
                    assert prev.kind == OpKind.BACKWARD
                    assert prev.minibatch == op.minibatch

    def test_noam_equals_num_stages(self):
        assert one_f_one_b_schedule(4, 8).noam == 4

    def test_fewer_minibatches_than_stages(self):
        sched = one_f_one_b_schedule(4, 2)
        validate_schedule(sched)

    def test_single_stage(self):
        sched = one_f_one_b_schedule(1, 3)
        validate_schedule(sched)
        assert op_pattern(sched, 0) == "FBFBFB"


class TestWarmupCount:
    def test_straight(self):
        stages = [Stage(i, i + 1, 1) for i in range(4)]
        assert [warmup_count(stages, s) for s in range(4)] == [4, 3, 2, 1]

    def test_replicated_input(self):
        stages = [Stage(0, 1, 3), Stage(1, 2, 1)]
        assert warmup_count(stages, 0) == 2  # ceil(4/3)
        assert warmup_count(stages, 1) == 1

    def test_equals_noam_at_input(self):
        for config in [(1, 1, 1), (2, 1), (3, 1), (2, 2), (4, 2, 1)]:
            stages = [Stage(i, i + 1, r) for i, r in enumerate(config)]
            assert warmup_count(stages, 0) == compute_noam(stages)


class TestOneFOneBRR:
    def test_round_robin_routing(self):
        stages = [Stage(0, 1, 2), Stage(1, 2, 1)]
        sched = one_f_one_b_rr_schedule(stages, 8)
        for b in range(8):
            assert sched.replica_for(0, b) == b % 2

    def test_replica_minibatches(self):
        stage = Stage(0, 1, 3)
        assert replica_minibatches(stage, 0, 10) == [0, 3, 6, 9]
        assert replica_minibatches(stage, 2, 10) == [2, 5, 8]

    def test_figure8_config(self):
        """2-1 config: workers 0/1 split even/odd, worker 2 takes all."""
        stages = [Stage(0, 1, 2), Stage(1, 2, 1)]
        sched = one_f_one_b_rr_schedule(stages, 6)
        validate_schedule(sched)
        w0 = [o.minibatch for o in sched.worker_ops[0] if o.kind == OpKind.FORWARD]
        w1 = [o.minibatch for o in sched.worker_ops[1] if o.kind == OpKind.FORWARD]
        w2 = [o.minibatch for o in sched.worker_ops[2] if o.kind == OpKind.FORWARD]
        assert w0 == [0, 2, 4]
        assert w1 == [1, 3, 5]
        assert w2 == [0, 1, 2, 3, 4, 5]

    def test_matches_closed_form_for_straight(self):
        stages = [Stage(i, i + 1, 1) for i in range(4)]
        rr = one_f_one_b_rr_schedule(stages, 10)
        cf = one_f_one_b_schedule(4, 10)
        for w in range(4):
            assert rr.worker_ops[w] == cf.worker_ops[w]

    @pytest.mark.parametrize("config", [
        (1, 3), (3, 1), (2, 2), (2, 1, 1), (1, 2, 1), (4, 2, 1), (1, 1, 2), (5,),
    ])
    def test_arbitrary_configs_validate(self, config):
        stages = [Stage(i, i + 1, r) for i, r in enumerate(config)]
        sched = one_f_one_b_rr_schedule(stages, 13)
        validate_schedule(sched)

    def test_same_replica_forward_and_backward(self):
        stages = [Stage(0, 1, 3), Stage(1, 2, 2)]
        sched = one_f_one_b_rr_schedule(stages, 12)
        validate_schedule(sched)  # includes the replica-consistency check


class TestGPipe:
    def test_flush_boundaries(self):
        sched = gpipe_schedule(3, num_batches=2, num_microbatches=4)
        assert sched.flush_after == [3, 7]
        validate_schedule(sched)

    def test_forwards_before_backwards_within_batch(self):
        sched = gpipe_schedule(2, 1, 4)
        ops = [o for o in sched.worker_ops[0] if o.kind != OpKind.UPDATE]
        kinds = "".join(o.kind.value for o in ops)
        assert kinds == "FFFFBBBB"

    def test_backwards_reverse_order(self):
        sched = gpipe_schedule(2, 1, 3)
        backs = [o.minibatch for o in sched.worker_ops[1] if o.kind == OpKind.BACKWARD]
        assert backs == [2, 1, 0]

    def test_one_update_per_batch(self):
        sched = gpipe_schedule(2, 3, 4)
        updates = [o for o in sched.worker_ops[0] if o.kind == OpKind.UPDATE]
        assert len(updates) == 3

    def test_noam_is_microbatch_count(self):
        assert gpipe_schedule(2, 1, 5).noam == 5


class TestBaselines:
    def test_model_parallel_one_in_flight(self):
        sched = model_parallel_schedule(3, 4)
        validate_schedule(sched)
        # Worker 0's ops: F(b) ... B(b) before F(b+1).
        ops = [o for o in sched.worker_ops[0] if o.kind != OpKind.UPDATE]
        kinds = "".join(o.kind.value for o in ops)
        assert kinds == "FB" * 4

    def test_data_parallel_every_worker_every_minibatch(self):
        sched = data_parallel_schedule(3, 4)
        for w in range(3):
            fwds = [o.minibatch for o in sched.worker_ops[w] if o.kind == OpKind.FORWARD]
            assert fwds == [0, 1, 2, 3]

    def test_data_parallel_stage_shape(self):
        sched = data_parallel_schedule(4, 2, num_layers=7)
        assert sched.stages[0].replicas == 4
        assert sched.stages[0].stop == 7


class TestValidation:
    def test_detects_missing_backward(self):
        sched = one_f_one_b_schedule(2, 3)
        sched.worker_ops[1] = [o for o in sched.worker_ops[1] if not (
            o.kind == OpKind.BACKWARD and o.minibatch == 2)]
        with pytest.raises(ValueError):
            validate_schedule(sched)

    def test_detects_backward_before_forward(self):
        stages = [Stage(0, 1, 1)]
        sched = Schedule(
            stages=stages,
            num_minibatches=1,
            worker_ops={0: [Op(OpKind.BACKWARD, 0, 0), Op(OpKind.FORWARD, 0, 0)]},
            stage_workers={0: [0]},
            noam=1,
        )
        with pytest.raises(ValueError):
            validate_schedule(sched)

    def test_detects_replica_mismatch(self):
        stages = [Stage(0, 1, 2)]
        sched = Schedule(
            stages=stages,
            num_minibatches=1,
            worker_ops={
                0: [Op(OpKind.FORWARD, 0, 0)],
                1: [Op(OpKind.BACKWARD, 0, 0)],
            },
            stage_workers={0: [0, 1]},
            noam=1,
        )
        with pytest.raises(ValueError):
            validate_schedule(sched)

    def test_detects_deadlock(self):
        # Two stages whose op orders wait on each other.
        stages = [Stage(0, 1, 1), Stage(1, 2, 1)]
        sched = Schedule(
            stages=stages,
            num_minibatches=2,
            worker_ops={
                0: [Op(OpKind.BACKWARD, 0, 0), Op(OpKind.FORWARD, 0, 0),
                    Op(OpKind.FORWARD, 0, 1), Op(OpKind.BACKWARD, 0, 1)],
                1: [Op(OpKind.FORWARD, 1, 0), Op(OpKind.BACKWARD, 1, 0),
                    Op(OpKind.FORWARD, 1, 1), Op(OpKind.BACKWARD, 1, 1)],
            },
            stage_workers={0: [0], 1: [1]},
            noam=2,
        )
        with pytest.raises(ValueError):
            validate_schedule(sched)
