"""Encoder-decoder attention model and multi-tensor stage boundaries."""

import numpy as np
import pytest

from repro.autodiff import Tensor, gradcheck
from repro.core.partition import Stage
from repro.models.seq2seq import (
    LuongAttention,
    build_attention_seq2seq,
    make_reversal_data,
)
from repro.nn import CrossEntropyLoss
from repro.optim import Adam
from repro.runtime import (
    PipelineTrainer,
    SequentialTrainer,
    ThreadedPipelineTrainer,
    evaluate_accuracy,
)

LOSS = CrossEntropyLoss()


@pytest.fixture
def task():
    (src, tgt_in), tgt_out = make_reversal_data(num_samples=96, seq_len=5,
                                                vocab_size=9, seed=1)
    batches = [
        ((src[i * 16 : (i + 1) * 16], tgt_in[i * 16 : (i + 1) * 16]),
         tgt_out[i * 16 : (i + 1) * 16])
        for i in range(6)
    ]
    return (src, tgt_in), tgt_out, batches


def build(seed=2, hidden=24):
    return build_attention_seq2seq(vocab_size=10, hidden=hidden,
                                   rng=np.random.default_rng(seed))


class TestReversalData:
    def test_target_is_reversed_source(self):
        (src, tgt_in), tgt_out = make_reversal_data(num_samples=5, seq_len=4,
                                                    vocab_size=7, seed=0)
        np.testing.assert_array_equal(tgt_out, src[:, ::-1])

    def test_teacher_forcing_shift(self):
        (src, tgt_in), tgt_out = make_reversal_data(num_samples=5, seq_len=4,
                                                    vocab_size=7, seed=0)
        assert (tgt_in[:, 0] == 7).all()  # BOS id == vocab_size
        np.testing.assert_array_equal(tgt_in[:, 1:], tgt_out[:, :-1])


class TestLuongAttention:
    def test_output_shape(self, rng):
        attn = LuongAttention(8, rng=rng)
        dec = Tensor(rng.standard_normal((2, 3, 8)))
        enc = Tensor(rng.standard_normal((2, 5, 8)))
        assert attn(dec, enc).shape == (2, 3, 8)

    def test_gradcheck(self, rng):
        attn = LuongAttention(4, rng=rng)
        dec = Tensor(rng.standard_normal((1, 2, 4)), requires_grad=True)
        enc = Tensor(rng.standard_normal((1, 3, 4)), requires_grad=True)
        assert gradcheck(lambda d, e: (attn(d, e) ** 2).mean(), [dec, enc],
                         atol=1e-4)

    def test_attends_to_relevant_position(self, rng):
        """A decoder state matching one encoder position pulls its value."""
        attn = LuongAttention(4, rng=rng)
        enc = np.zeros((1, 3, 4))
        enc[0, 2] = [10.0, 0, 0, 0]  # distinctive key at position 2
        dec = np.array([[[10.0, 0, 0, 0]]])  # query aligned with position 2
        scores = (Tensor(dec) @ Tensor(enc).transpose(0, 2, 1)).data
        assert scores[0, 0].argmax() == 2


class TestModel:
    def test_forward_shapes(self, task):
        (src, tgt_in), tgt_out, _ = task
        model = build()
        logits = model((src[:4], tgt_in[:4]))
        assert logits.shape == (4, 5, 10)

    def test_layer_graph_traces_tuples(self, task):
        (src, tgt_in), _, _ = task
        model = build()
        graph = model.layer_graph((src[:1], tgt_in[:1]))
        assert len(graph) == model.num_layers
        assert all(l.output_elements > 0 for l in graph)

    def test_learns_reversal(self, task):
        """Reversal needs attention: output t depends on input S-1-t."""
        (src, tgt_in), tgt_out, batches = task
        model = build(hidden=32)
        trainer = SequentialTrainer(model, LOSS, Adam(model.parameters(), lr=0.01))
        for _ in range(25):
            trainer.train_epoch(batches)
        assert evaluate_accuracy(model, (src, tgt_in), tgt_out) > 0.85

    def test_measured_profiler_handles_tuples(self, task):
        from repro.profiler import profile_model

        (src, tgt_in), _, _ = task
        model = build()
        profile = profile_model(model, (src[:8], tgt_in[:8]), 1, 0)
        assert len(profile) == model.num_layers
        assert profile.total_weight_bytes == model.parameter_bytes()


class TestPipelinedSeq2Seq:
    def test_single_stage_bitwise_equals_sequential(self, task):
        (src, tgt_in), tgt_out, batches = task
        m_pipe, m_ref = build(), build()
        n = m_pipe.num_layers
        pipe = PipelineTrainer(m_pipe, [Stage(0, n, 1)], LOSS,
                               lambda ps: Adam(ps, lr=0.01))
        ref = SequentialTrainer(m_ref, LOSS, Adam(m_ref.parameters(), lr=0.01))
        pipe.train_minibatches(batches)
        ref.train_epoch(batches)
        pipe.consolidated_model()
        for (name, pa), (_, pb) in zip(m_pipe.named_parameters(),
                                       m_ref.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-10, err_msg=name)

    def test_encoder_decoder_split_trains(self, task):
        """The boundary between stages carries a TUPLE (enc_out, state)."""
        (src, tgt_in), tgt_out, batches = task
        model = build(hidden=32)
        n = model.num_layers
        bridge = model.layer_names.index("bridge")
        stages = [Stage(0, bridge, 1), Stage(bridge, n, 1)]
        trainer = PipelineTrainer(model, stages, LOSS,
                                  lambda ps: Adam(ps, lr=0.01))
        losses = [trainer.train_minibatches(batches) for _ in range(20)]
        assert losses[-1] < 0.4 * losses[0]
        acc = evaluate_accuracy(trainer.consolidated_model(), (src, tgt_in), tgt_out)
        assert acc > 0.7

    def test_three_stage_split_with_mid_decoder_boundary(self, task):
        """A cut between decoder layers ships (enc_out, dec_state) — two
        float tensors whose gradients both flow back across the boundary."""
        (src, tgt_in), tgt_out, batches = task
        model = build(hidden=24)
        names = model.layer_names
        cut1 = names.index("bridge")
        cut2 = names.index("dec2")
        stages = [Stage(0, cut1, 1), Stage(cut1, cut2, 1),
                  Stage(cut2, model.num_layers, 1)]
        trainer = PipelineTrainer(model, stages, LOSS,
                                  lambda ps: Adam(ps, lr=0.01))
        losses = [trainer.train_minibatches(batches) for _ in range(8)]
        assert losses[-1] < losses[0]

    def test_threaded_runtime_matches_logical(self, task):
        (src, tgt_in), tgt_out, batches = task
        m_log, m_thr = build(), build()
        names = m_log.layer_names
        cut = names.index("bridge")
        stages = [Stage(0, cut, 1), Stage(cut, m_log.num_layers, 1)]
        logical = PipelineTrainer(m_log, stages, LOSS, lambda ps: Adam(ps, lr=0.01))
        threaded = ThreadedPipelineTrainer(m_thr, stages, LOSS,
                                           lambda ps: Adam(ps, lr=0.01))
        logical.train_minibatches(batches)
        threaded.train_minibatches(batches)
        for (name, pa), (_, pb) in zip(
            logical.consolidated_model().named_parameters(),
            threaded.consolidated_model().named_parameters(),
        ):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-12, err_msg=name)

    def test_recompute_with_tuple_boundaries(self, task):
        (src, tgt_in), tgt_out, batches = task
        m_plain, m_rec = build(), build()
        cut = m_plain.layer_names.index("bridge")
        stages = [Stage(0, cut, 1), Stage(cut, m_plain.num_layers, 1)]
        plain = PipelineTrainer(m_plain, stages, LOSS, lambda ps: Adam(ps, lr=0.01))
        rec = PipelineTrainer(m_rec, stages, LOSS, lambda ps: Adam(ps, lr=0.01),
                              recompute_activations=True)
        plain.train_minibatches(batches)
        rec.train_minibatches(batches)
        for (name, pa), (_, pb) in zip(
            plain.consolidated_model().named_parameters(),
            rec.consolidated_model().named_parameters(),
        ):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-10, err_msg=name)
