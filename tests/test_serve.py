"""The planner service: canonical keys, value transparency, HTTP parity.

Three properties carry the subsystem:

1. *Canonicalization* — syntactically different but semantically equal
   requests share one cache key; junk fields are rejected, not ignored.
2. *Value transparency* — a served answer (cache hit, warm start, batch
   slot) is bitwise-equal to a cold :meth:`PipeDreamOptimizer.solve`.
3. *Transport equivalence* — the HTTP client and the in-process client
   return identical payloads, and errors map to the same exception type.
"""

import threading

import pytest

from repro.core.partition import PipeDreamOptimizer
from repro.core.topology import cluster_a
from repro.profiler import analytic_profile
from repro.serve import (
    HTTPPlannerClient,
    PlannerClient,
    PlannerService,
    RequestError,
    ServerThread,
    normalize_plan_request,
    topology_to_dict,
)

VGG = {"model": "vgg16", "cluster": "a", "servers": 1}


def cold_payload(request):
    """Ground truth: solve the normalized query with a fresh optimizer."""
    query = normalize_plan_request(request)
    result = PipeDreamOptimizer(
        query.profile,
        query.topology,
        allow_replication=query.allow_replication,
        memory_limit_bytes=query.memory_limit_bytes,
        vectorize=query.vectorize,
        memory_refine=query.memory_refine,
    ).solve(query.num_workers)
    return (
        [[s.start, s.stop, s.replicas] for s in result.stages],
        result.slowest_stage_time,
        list(result.memory_bytes),
    )


def served_tuple(payload):
    return (
        payload["stages"],
        payload["slowest_stage_time"],
        payload["memory_bytes"],
    )


class TestNormalization:
    def test_unknown_fields_rejected(self):
        with pytest.raises(RequestError, match="unknown request fields"):
            normalize_plan_request(dict(VGG, batch_sizee=64))

    def test_model_xor_profile(self):
        with pytest.raises(RequestError, match="exactly one"):
            normalize_plan_request({"cluster": "a"})
        prof = analytic_profile("vgg16").to_dict()
        with pytest.raises(RequestError, match="exactly one"):
            normalize_plan_request({"model": "vgg16", "profile": prof})

    def test_unknown_model_cluster_precision(self):
        with pytest.raises(RequestError, match="unknown model"):
            normalize_plan_request({"model": "vgg19"})
        with pytest.raises(RequestError, match="unknown cluster"):
            normalize_plan_request({"model": "vgg16", "cluster": "z"})
        with pytest.raises(RequestError, match="unknown precision"):
            normalize_plan_request({"model": "vgg16", "precision": "int4"})

    def test_topology_and_cluster_conflict(self):
        topo = topology_to_dict(cluster_a(1))
        with pytest.raises(RequestError, match="not both"):
            normalize_plan_request(
                {"model": "vgg16", "cluster": "a", "topology": topo}
            )

    def test_inline_profile_matches_named_model(self):
        named = normalize_plan_request(VGG)
        inlined = normalize_plan_request({
            "profile": analytic_profile("vgg16").to_dict(),
            "cluster": "a", "servers": 1,
        })
        assert named.key == inlined.key

    def test_inline_topology_matches_named_cluster(self):
        named = normalize_plan_request(VGG)
        inlined = normalize_plan_request({
            "model": "vgg16",
            "topology": topology_to_dict(cluster_a(1)),
        })
        assert named.key == inlined.key

    def test_precision_splits_the_key(self):
        fp32 = normalize_plan_request(VGG)
        fp16 = normalize_plan_request(dict(VGG, precision="fp16"))
        assert fp32.key != fp16.key

    def test_worker_subset_in_key(self):
        full = normalize_plan_request({"model": "vgg16", "cluster": "a",
                                       "servers": 4})
        sub = normalize_plan_request({"model": "vgg16", "cluster": "a",
                                      "servers": 4, "num_workers": 8})
        assert full.num_workers == 16
        assert sub.num_workers == 8
        assert full.key != sub.key


class TestPlanEndpoint:
    def test_parity_with_cold_solve(self):
        service = PlannerService()
        for request in (
            VGG,
            dict(VGG, precision="fp16"),
            {"model": "gnmt8", "cluster": "a", "servers": 4,
             "num_workers": 8, "memory_limit_bytes": 16e9},
        ):
            assert served_tuple(service.plan(request)) == cold_payload(request)

    def test_cache_hit_flag_and_identical_payload(self):
        service = PlannerService()
        first = service.plan(VGG)
        second = service.plan(VGG)
        assert first["cached"] is False
        assert second["cached"] is True
        assert served_tuple(first) == served_tuple(second)
        assert service.plan_cache.stats()["hits"] == 1

    def test_equivalent_phrasings_share_one_entry(self):
        service = PlannerService()
        service.plan(VGG)
        rephrased = service.plan({
            "profile": analytic_profile("vgg16").to_dict(),
            "topology": topology_to_dict(cluster_a(1)),
        })
        assert rephrased["cached"] is True
        assert len(service.plan_cache) == 1

    def test_cache_disabled_service_still_correct(self):
        service = PlannerService(plan_cache_size=0, warm_start=False)
        assert service.plan(VGG)["cached"] is False
        assert service.plan(VGG)["cached"] is False
        assert served_tuple(service.plan(VGG)) == cold_payload(VGG)

    def test_infeasible_cap_is_a_request_error(self):
        service = PlannerService()
        with pytest.raises(RequestError):
            service.plan(dict(VGG, memory_limit_bytes=1e6))

    def test_warm_service_matches_cold_across_axes(self):
        service = PlannerService(plan_cache_size=0, warm_start=True)
        for workers in (16, 8, 4):
            for cap in (None, 16e9):
                request = {"model": "vgg16", "cluster": "a", "servers": 4,
                           "num_workers": workers,
                           "memory_limit_bytes": cap}
                assert served_tuple(service.plan(request)) == \
                    cold_payload(request)


class TestSimulateSweepBatch:
    def test_simulate_matches_direct_sim(self):
        from repro.sim import simulate_pipedream

        service = PlannerService()
        payload = service.simulate(dict(VGG, minibatches=16))
        direct = simulate_pipedream(
            analytic_profile("vgg16"), cluster_a(1), num_minibatches=16
        )
        assert payload["throughput"] == direct.throughput
        assert payload["config"] == direct.config
        assert service.simulate(dict(VGG, minibatches=16))["cached"] is True

    def test_simulate_unknown_strategy(self):
        with pytest.raises(RequestError, match="unknown strategy"):
            PlannerService().simulate(dict(VGG, strategy="zpp"))

    def test_sweep_matches_run_sweep(self):
        from repro.sim import run_sweep

        service = PlannerService()
        payload = service.sweep({
            "models": ["vgg16"], "cluster": "a", "servers": 1,
            "counts": [4], "minibatches": 16,
        })
        direct = run_sweep(["vgg16"], cluster_a(1), [4], minibatches=16)
        assert len(payload["records"]) == len(direct)
        served = {(r["strategy"], r["workers"]): r["samples_per_second"]
                  for r in payload["records"]}
        for record in direct:
            assert served[(record.strategy, record.workers)] == \
                record.samples_per_second

    def test_batch_restores_order_and_isolates_errors(self):
        service = PlannerService()
        requests = [
            VGG,
            {"model": "nope"},
            {"model": "resnet50", "cluster": "a", "servers": 1},
            dict(VGG, memory_limit_bytes=1e6),
            VGG,
        ]
        results = service.batch(requests)
        assert len(results) == len(requests)
        assert served_tuple(results[0]) == cold_payload(VGG)
        assert "unknown model" in results[1]["error"]
        assert served_tuple(results[2]) == cold_payload(requests[2])
        assert "error" in results[3]
        assert results[4]["cached"] is True

    def test_stats_shape(self):
        service = PlannerService()
        service.plan(VGG)
        stats = service.stats()
        assert stats["requests"]["plan"] == 1
        assert stats["plan_cache"]["entries"] == 1
        assert "solver_contexts" in stats
        assert "eval_tables" in stats


class TestHTTPTransport:
    @pytest.fixture(scope="class")
    def server(self):
        service = PlannerService()
        with ServerThread(service) as url:
            yield HTTPPlannerClient(url), PlannerClient(service)

    def test_healthz(self, server):
        http, _ = server
        assert http.healthy()

    def test_plan_roundtrip_equals_in_process(self, server):
        http, inproc = server
        over_http = http.plan(VGG)
        in_process = inproc.plan(VGG)
        assert served_tuple(over_http) == served_tuple(in_process)
        assert served_tuple(over_http) == cold_payload(VGG)

    def test_bad_request_is_http_400_same_type(self, server):
        http, inproc = server
        with pytest.raises(RequestError) as http_err:
            http.plan({"model": "vgg19"})
        with pytest.raises(RequestError) as local_err:
            inproc.plan({"model": "vgg19"})
        assert str(http_err.value) == str(local_err.value)

    def test_unknown_endpoint_404(self, server):
        http, _ = server
        with pytest.raises(RequestError, match="no such endpoint"):
            http._request("/plans", {})

    def test_batch_roundtrip(self, server):
        http, _ = server
        results = http.batch([VGG, {"model": "nope"}])
        assert served_tuple(results[0]) == cold_payload(VGG)
        assert "error" in results[1]

    def test_stats_roundtrip(self, server):
        http, _ = server
        stats = http.stats()
        assert stats["requests"]["plan"] >= 1
        assert "plan_cache" in stats

    def test_two_servers_coexist(self, server):
        """Port-0 binding: a second server on the same host picks its own
        ephemeral port, and both answer while the first is still up."""
        http, _ = server
        with ServerThread(PlannerService()) as second_url:
            second = HTTPPlannerClient(second_url)
            assert second_url != http.base_url
            assert second.healthy() and http.healthy()
            assert served_tuple(second.plan(VGG)) == served_tuple(http.plan(VGG))

    def test_concurrent_clients_all_correct(self, server):
        http, _ = server
        requests = [
            dict(VGG, num_workers=w) for w in (4, 2, 1)
        ] + [{"model": "resnet50", "cluster": "a", "servers": 1}]
        expected = {id(r): cold_payload(r) for r in requests}
        failures = []
        barrier = threading.Barrier(len(requests) * 2)

        def worker(request):
            barrier.wait()
            for _ in range(3):
                if served_tuple(http.plan(request)) != expected[id(request)]:
                    failures.append(request)

        threads = [threading.Thread(target=worker, args=(r,))
                   for r in requests * 2]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
