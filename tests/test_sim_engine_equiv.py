"""The event-driven engine is an optimization, not a semantic change.

Every scenario here runs the same schedule through ``engine="reference"``
(the original rescan loop) and ``engine="event"`` (heap + wakeup lists)
and asserts bitwise-identical results: the full OpRecord timeline, the
aggregate busy/sync accounting, and the per-minibatch completion times.
The hypothesis case fuzzes profiles, stragglers, and NIC contention on
top of the hand-picked regressions.

A second group pins the vectorized partitioner DP to the scalar
reference: same stages, same bottleneck time, same config string, for
every paper model and the edge cases (no replication, memory limits,
worker subsets, hierarchical topologies).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import PipeDreamOptimizer, Stage
from repro.core.profile import LayerProfile, ModelProfile
from repro.core.schedule import (
    data_parallel_schedule,
    gpipe_schedule,
    model_parallel_schedule,
    one_f_one_b_rr_schedule,
    one_f_one_b_schedule,
)
from repro.core.topology import cluster_a, cluster_b, make_cluster
from repro.profiler import analytic_profile
from repro.sim.executor import SimOptions, simulate
from repro.sim.strategies import balanced_straight_stages

VGG = analytic_profile("vgg16")
TOPO_A = cluster_a(4)


def assert_engines_identical(sched, profile, topo, options=None):
    ref = simulate(sched, profile, topo, options, engine="reference")
    evt = simulate(sched, profile, topo, options, engine="event")
    assert evt.records == ref.records
    assert evt.total_time == ref.total_time
    assert evt.channel_busy == ref.channel_busy
    assert evt.sync_busy == ref.sync_busy
    assert evt.compute_time_per_worker == ref.compute_time_per_worker
    assert evt.minibatch_done == ref.minibatch_done


STAGES_16 = balanced_straight_stages(VGG, 16)

SCENARIOS = {
    "straight_1f1b_16w": lambda: (
        one_f_one_b_rr_schedule(STAGES_16, 32), VGG, TOPO_A, None),
    "rr_15_1": lambda: (
        one_f_one_b_rr_schedule([Stage(0, 14, 15), Stage(14, len(VGG), 1)], 48),
        VGG, TOPO_A, None),
    "rr_8_8": lambda: (
        one_f_one_b_rr_schedule([Stage(0, 10, 8), Stage(10, len(VGG), 8)], 48),
        VGG, TOPO_A, None),
    "bsp_data_parallel": lambda: (
        data_parallel_schedule(16, 24, num_layers=len(VGG)), VGG, TOPO_A,
        SimOptions(sync_mode="bsp")),
    "gpipe_recompute": lambda: (
        gpipe_schedule(4, 6, 4), VGG, make_cluster("t4", 4, 1, 1e9, 1e9),
        SimOptions(sync_mode="gpipe", microbatches_per_batch=4,
                   recompute_activations=True)),
    "model_parallel": lambda: (
        model_parallel_schedule(4, 12), VGG,
        make_cluster("t4", 4, 1, 1e9, 1e9), None),
    "straggler_1f1b": lambda: (
        one_f_one_b_rr_schedule(STAGES_16, 32), VGG, TOPO_A,
        SimOptions(worker_speed={3: 0.5, 7: 2.0})),
    "nic_contention_1f1b": lambda: (
        one_f_one_b_rr_schedule(STAGES_16, 32), VGG, TOPO_A,
        SimOptions(nic_contention=True)),
    "bsp_straggler_nic_cluster_b": lambda: (
        data_parallel_schedule(8, 16, num_layers=len(VGG)), VGG, cluster_b(1),
        SimOptions(sync_mode="bsp", worker_speed={0: 0.7},
                   nic_contention=True)),
    # BSP round commits bump every sibling's worker_free at once — the
    # event engine's dirty-marking path.  Stragglers desynchronize the
    # round members so the bumps actually move queued ready times.
    "bsp_dp_stragglers_16w": lambda: (
        data_parallel_schedule(16, 24, num_layers=len(VGG)), VGG, TOPO_A,
        SimOptions(sync_mode="bsp",
                   worker_speed={0: 0.5, 5: 1.7, 11: 0.8, 15: 2.0})),
    # ASP data parallelism (sync_mode="pipedream"): no round barrier, the
    # no-check pop fast path must still match the rescan reference.
    "asp_data_parallel": lambda: (
        data_parallel_schedule(16, 24, num_layers=len(VGG)), VGG, TOPO_A,
        None),
    # PipeDream's ASP form of data parallelism: one replicated stage under
    # 1F1B-RR, minibatches round-robined over the replicas, weight syncs
    # once per round.  Stragglers desynchronize the round members.
    "asp_dp_single_stage_rr_stragglers": lambda: (
        one_f_one_b_rr_schedule([Stage(0, len(VGG), 8)], 40), VGG,
        cluster_b(1),
        SimOptions(worker_speed={2: 0.4, 6: 2.5}, nic_contention=True)),
    # ASP over a *data-parallel* schedule with enough minibatches that the
    # pipedream rnd-2 backward gate is live (rnd reaches 4): every replica
    # runs every minibatch, so each round holds replicas x per-sweep
    # UPDATEs.  The old round-robin membership formula closed rounds after
    # the first sweep and re-committed them per later arrival, making
    # update_done (and this gate) commit-order dependent — the engines
    # disagreed on the record timeline under stragglers.
    "asp_dp_rounds_stragglers": lambda: (
        data_parallel_schedule(8, 40, num_layers=len(VGG)), VGG,
        cluster_b(1),
        SimOptions(worker_speed={1: 0.45, 5: 2.3}, nic_contention=True)),
    # Replicated-stage 1F1B-RR under stragglers: weight syncs on both
    # 8-replica groups interleave with the pipeline's P2P transfers.
    "rr_8_8_stragglers_nic": lambda: (
        one_f_one_b_rr_schedule([Stage(0, 10, 8), Stage(10, len(VGG), 8)], 48),
        VGG, TOPO_A,
        SimOptions(worker_speed={1: 0.6, 9: 1.9}, nic_contention=True)),
}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_engine_matches_reference(scenario):
    sched, profile, topo, options = SCENARIOS[scenario]()
    assert_engines_identical(sched, profile, topo, options)


class TestEngineMatchesReferenceFuzzed:
    @given(
        compute=st.lists(st.floats(0.5, 20.0, allow_nan=False), min_size=4,
                         max_size=4),
        act=st.integers(0, 500),
        weights=st.integers(0, 500),
        minibatches=st.integers(1, 12),
        straggler=st.floats(0.25, 4.0, allow_nan=False),
        nic=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_1f1b_fuzz(self, compute, act, weights, minibatches, straggler,
                       nic):
        layers = [LayerProfile(f"l{i}", c, act, weights)
                  for i, c in enumerate(compute)]
        profile = ModelProfile("fuzz", layers, batch_size=1)
        topo = make_cluster("t4", 4, 1, 50.0, 50.0)
        options = SimOptions(worker_speed={1: straggler},
                             nic_contention=nic)
        assert_engines_identical(
            one_f_one_b_schedule(4, minibatches), profile, topo, options)

    @given(
        compute=st.lists(st.floats(0.5, 20.0, allow_nan=False), min_size=2,
                         max_size=2),
        weights=st.integers(0, 2000),
        minibatches=st.integers(1, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_bsp_fuzz(self, compute, weights, minibatches):
        layers = [LayerProfile(f"l{i}", c, 0, weights)
                  for i, c in enumerate(compute)]
        profile = ModelProfile("fuzz", layers, batch_size=1)
        topo = make_cluster("t4", 4, 1, 25.0, 25.0)
        assert_engines_identical(
            data_parallel_schedule(4, minibatches, num_layers=2), profile,
            topo, SimOptions(sync_mode="bsp"))

    @given(
        compute=st.lists(st.floats(0.5, 20.0, allow_nan=False), min_size=3,
                         max_size=3),
        weights=st.integers(0, 2000),
        minibatches=st.integers(2, 16),
        speeds=st.lists(st.floats(0.25, 4.0, allow_nan=False), min_size=8,
                        max_size=8),
        nic=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_bsp_straggler_fuzz(self, compute, weights, minibatches, speeds,
                                nic):
        """8-worker BSP with per-worker speeds: every round commit bumps
        seven siblings, so stale queued entries are the common case."""
        layers = [LayerProfile(f"l{i}", c, 0, weights)
                  for i, c in enumerate(compute)]
        profile = ModelProfile("fuzz", layers, batch_size=1)
        topo = make_cluster("t8", 4, 2, 25.0, 5.0)
        options = SimOptions(sync_mode="bsp",
                             worker_speed=dict(enumerate(speeds)),
                             nic_contention=nic)
        assert_engines_identical(
            data_parallel_schedule(8, minibatches, num_layers=3), profile,
            topo, options)


# ----------------------------------------------------------------------
# Vectorized partitioner DP vs the scalar reference.
# ----------------------------------------------------------------------

PAPER_MODELS = ("vgg16", "resnet50", "alexnet", "gnmt16", "gnmt8",
                "awd-lm", "s2vt", "mask-rcnn", "ssd")


def assert_plans_identical(profile, topo, num_workers=None, **kwargs):
    vec = PipeDreamOptimizer(profile, topo, vectorize=True, **kwargs)
    ref = PipeDreamOptimizer(profile, topo, vectorize=False, **kwargs)
    pv = vec.solve(num_workers)
    pr = ref.solve(num_workers)
    assert pv.stages == pr.stages
    assert pv.slowest_stage_time == pr.slowest_stage_time
    assert pv.config_string == pr.config_string
    assert pv.num_workers == pr.num_workers
    return pv


@pytest.mark.parametrize("model", PAPER_MODELS)
def test_vectorized_plan_matches_scalar(model):
    assert_plans_identical(analytic_profile(model), TOPO_A)


def test_vectorized_no_replication(toy_profile, flat4):
    assert_plans_identical(toy_profile, flat4, allow_replication=False)


def test_vectorized_two_level(toy_profile, two_level):
    assert_plans_identical(toy_profile, two_level)


@pytest.mark.parametrize("num_workers", [2, 3, 4, 8])
def test_vectorized_worker_subsets(num_workers):
    assert_plans_identical(analytic_profile("gnmt8"), TOPO_A, num_workers)


def test_vectorized_memory_limit(toy_profile, flat4):
    # Generous limit: feasible in both, identical plans.
    assert_plans_identical(toy_profile, flat4, memory_limit_bytes=1e9)
    # Impossibly tight limit: both paths must agree it is infeasible.
    vec = PipeDreamOptimizer(toy_profile, flat4, vectorize=True,
                             memory_limit_bytes=1.0)
    ref = PipeDreamOptimizer(toy_profile, flat4, vectorize=False,
                             memory_limit_bytes=1.0)
    with pytest.raises(RuntimeError):
        vec.solve()
    with pytest.raises(RuntimeError):
        ref.solve()


def test_memoized_solver_matches_cold_solves():
    """One optimizer reused across worker counts == fresh solves."""
    profile = analytic_profile("vgg16")
    shared = PipeDreamOptimizer(profile, TOPO_A)
    for workers in (4, 8, 12, 16):
        warm = shared.solve(workers)
        cold = PipeDreamOptimizer(profile, TOPO_A).solve(workers)
        assert warm.stages == cold.stages
        assert warm.slowest_stage_time == cold.slowest_stage_time


# ----------------------------------------------------------------------
# Tensor-parallel stages: intra-stage collectives in both engines.
# ----------------------------------------------------------------------

from repro.core.partition import SolverContext  # noqa: E402
from repro.core.schedule import schedule_for_family  # noqa: E402
from repro.core.topology import Topology, TopologyLevel  # noqa: E402
from repro.sim.faults import parse_faults  # noqa: E402

HIER_TOPO = Topology("hier", [
    TopologyLevel(4, 12e9, allreduce_latency=2e-5),
    TopologyLevel(2, 2e9, allreduce_latency=8e-5),
])
FLAT8 = Topology("flat8", [TopologyLevel(8, 25e9)])
#: Pinned memory cap for vgg16 on FLAT8: infeasible at tp=1, recovered
#: by sharding (see TestTpPlanShift).
VGG_FLAT8_CAP = 1766.3e6


def _tp_stages_vgg():
    """A hand-built hybrid plan for vgg16 on 8 workers: a sharded
    replicated head (2x2), two plain stages, and a sharded tail (1x2)."""
    n = len(VGG)
    return [Stage(0, 8, 2, tp_degree=2), Stage(8, 12, 2),
            Stage(12, 16, 1), Stage(16, n, 1, tp_degree=2)]


TP_SCENARIOS = {
    # The planner's own hybrid pick on a hierarchical cluster.
    "tp_planned_hier": lambda: (
        one_f_one_b_rr_schedule(
            PipeDreamOptimizer(
                VGG, HIER_TOPO, memory_limit_bytes=VGG_FLAT8_CAP,
                tp_degrees=(1, 2)).solve().stages, 32),
        VGG, HIER_TOPO, None),
    "tp_hand_plan_flat8": lambda: (
        one_f_one_b_rr_schedule(_tp_stages_vgg(), 32), VGG, FLAT8, None),
    # Uneven packing: a tp=3 group [2, 3, 4] straddles the host boundary
    # of a 3-per-host cluster, so its shard collective crosses levels.
    "tp_uneven_cross_host": lambda: (
        one_f_one_b_rr_schedule(
            [Stage(0, 8, 1, tp_degree=2), Stage(8, 14, 1, tp_degree=3),
             Stage(14, len(VGG), 1)], 24),
        VGG, make_cluster("t6", 3, 2, 10e9, 1e9), None),
    "tp_stragglers_nic": lambda: (
        one_f_one_b_rr_schedule(_tp_stages_vgg(), 32), VGG, HIER_TOPO,
        SimOptions(worker_speed={1: 0.5, 6: 2.0}, nic_contention=True)),
    # A bandwidth-fault window squeezes the links while tp collectives
    # and dp syncs are in flight.
    "tp_bandwidth_fault_window": lambda: (
        one_f_one_b_rr_schedule(_tp_stages_vgg(), 32), VGG, HIER_TOPO,
        SimOptions(faults=parse_faults("bw@0.5:x4.0:d2.0", num_workers=8))),
    "tp_2bp_backward_split": lambda: (
        schedule_for_family(
            one_f_one_b_rr_schedule(_tp_stages_vgg(), 32), "2bp"),
        VGG, FLAT8, None),
    "tp_2bp_stragglers": lambda: (
        schedule_for_family(
            one_f_one_b_rr_schedule(_tp_stages_vgg(), 32), "2bp"),
        VGG, HIER_TOPO, SimOptions(worker_speed={3: 0.6, 5: 1.8})),
}


@pytest.mark.parametrize("scenario", sorted(TP_SCENARIOS))
def test_engine_matches_reference_with_tp(scenario):
    sched, profile, topo, options = TP_SCENARIOS[scenario]()
    assert_engines_identical(sched, profile, topo, options)


class TestTpPlanShift:
    """The acceptance scenario: a memory-capped cell that is infeasible
    at tp=1 becomes feasible through the third axis, and warm-started
    solves agree with cold ones bitwise."""

    def test_vgg16_flat8_recovered_by_tp(self):
        for vectorize in (True, False):
            with pytest.raises(RuntimeError):
                PipeDreamOptimizer(
                    VGG, FLAT8, memory_limit_bytes=VGG_FLAT8_CAP,
                    vectorize=vectorize).solve()
            plan = PipeDreamOptimizer(
                VGG, FLAT8, memory_limit_bytes=VGG_FLAT8_CAP,
                tp_degrees=(1, 2), vectorize=vectorize).solve()
            assert plan.config_string == "1x2-1x2-2x2"
            assert max(plan.memory_bytes) <= VGG_FLAT8_CAP
            assert any(s.tp_degree > 1 for s in plan.stages)

    def test_gnmt16_flat8_recovered_by_tp(self):
        gnmt = analytic_profile("gnmt16")
        cap = 475.1e6
        with pytest.raises(RuntimeError):
            PipeDreamOptimizer(gnmt, FLAT8, memory_limit_bytes=cap).solve()
        plan = PipeDreamOptimizer(
            gnmt, FLAT8, memory_limit_bytes=cap, tp_degrees=(1, 2)).solve()
        assert plan.config_string == "3-1-2-1x2"
        assert max(plan.memory_bytes) <= cap

    def test_warm_start_matches_cold_with_tp(self):
        context = SolverContext(VGG)
        kwargs = dict(memory_limit_bytes=VGG_FLAT8_CAP, tp_degrees=(1, 2))
        warm_opt = PipeDreamOptimizer(VGG, FLAT8, context=context, **kwargs)
        for workers in (4, 6, 8):
            warm = warm_opt.solve(workers)
            cold = PipeDreamOptimizer(VGG, FLAT8, **kwargs).solve(workers)
            assert warm.stages == cold.stages
            assert warm.slowest_stage_time == cold.slowest_stage_time
            assert warm.memory_bytes == cold.memory_bytes
        # A second warm solve of the same query is served from the same
        # tables and stays bitwise put.
        again = warm_opt.solve(8)
        assert again.stages == warm_opt.solve(8).stages
