"""The discrete-event executor: utilization, stalls, strategy ordering."""

import pytest

from repro.core.partition import Stage
from repro.core.profile import LayerProfile, ModelProfile
from repro.core.schedule import (
    OpKind,
    data_parallel_schedule,
    gpipe_schedule,
    model_parallel_schedule,
    one_f_one_b_rr_schedule,
    one_f_one_b_schedule,
)
from repro.core.topology import make_cluster
from repro.sim.executor import SimOptions, simulate, stage_compute_times


def uniform_profile(n=4, compute=3.0, act=0, weights=0):
    """n identical layers; fwd:bwd = 1:2 by the default split."""
    layers = [LayerProfile(f"l{i}", compute, act, weights) for i in range(n)]
    return ModelProfile("uniform", layers, batch_size=1)


@pytest.fixture
def topo4():
    return make_cluster("t4", 4, 1, 1000.0, 1000.0)


class TestModelParallelBaseline:
    def test_utilization_is_one_over_n(self, topo4):
        """Figure 2: only one worker active at a time."""
        profile = uniform_profile()
        sched = model_parallel_schedule(4, 8)
        sim = simulate(sched, profile, topo4)
        assert sim.average_utilization == pytest.approx(0.25, rel=1e-6)

    def test_total_time_is_serial(self, topo4):
        profile = uniform_profile()
        sched = model_parallel_schedule(4, 5)
        sim = simulate(sched, profile, topo4)
        assert sim.total_time == pytest.approx(5 * profile.total_compute_time)


class TestOneFOneB:
    def test_steady_state_no_bubbles(self, topo4):
        """Figure 4: balanced stages reach full utilization in steady state."""
        profile = uniform_profile()
        sched = one_f_one_b_schedule(4, 32)
        sim = simulate(sched, profile, topo4)
        # Steady-state throughput = 1 / per-stage time.
        assert sim.steady_state_throughput == pytest.approx(1.0 / 3.0, rel=0.05)

    def test_throughput_beats_model_parallel(self, topo4):
        profile = uniform_profile()
        mp = simulate(model_parallel_schedule(4, 16), profile, topo4)
        pd = simulate(one_f_one_b_schedule(4, 16), profile, topo4)
        assert pd.total_time < mp.total_time / 2.5

    def test_startup_phase_visible(self, topo4):
        """The first minibatch takes a full pipeline traversal."""
        profile = uniform_profile()
        sim = simulate(one_f_one_b_schedule(4, 16), profile, topo4)
        first = sim.minibatch_done[0]
        assert first >= 4 * 1.0 + 4 * 2.0  # all forwards + all backwards

    def test_records_cover_all_ops(self, topo4):
        profile = uniform_profile()
        sched = one_f_one_b_schedule(4, 4)
        sim = simulate(sched, profile, topo4)
        fb = [r for r in sim.records if r.op.kind != OpKind.UPDATE]
        assert len(fb) == 2 * 4 * 4

    def test_replicated_stage_processes_in_parallel(self, topo4):
        # 3-1 on a uniform 2-layer profile: stage0 3x replicas.
        layers = [LayerProfile("a", 9.0, 0, 0), LayerProfile("b", 3.0, 0, 0)]
        profile = ModelProfile("m", layers, batch_size=1)
        stages = [Stage(0, 1, 3), Stage(1, 2, 1)]
        sched = one_f_one_b_rr_schedule(stages, 30)
        sim = simulate(sched, profile, topo4)
        # Balanced: both stages sustain 1 minibatch per 3s.
        assert sim.steady_state_throughput == pytest.approx(1 / 3.0, rel=0.1)


class TestCommunication:
    def test_boundary_transfer_delays_pipeline(self):
        topo = make_cluster("slow", 2, 1, 10.0, 10.0)
        layers = [LayerProfile("a", 3.0, 100, 0), LayerProfile("b", 3.0, 10, 0)]
        profile = ModelProfile("m", layers, batch_size=1)
        fast = simulate(one_f_one_b_schedule(2, 8), profile, topo)
        # 100 bytes at 10 B/s = 10s per boundary crossing > 3s compute.
        assert fast.steady_state_throughput < 1.0 / 9.0

    def test_channel_busy_recorded(self):
        topo = make_cluster("slow", 2, 1, 10.0, 10.0)
        layers = [LayerProfile("a", 3.0, 100, 0), LayerProfile("b", 3.0, 10, 0)]
        profile = ModelProfile("m", layers, batch_size=1)
        sim = simulate(one_f_one_b_schedule(2, 4), profile, topo)
        assert sim.channel_busy[(0, 1)] > 0  # activations downstream
        assert sim.channel_busy[(1, 0)] > 0  # gradients upstream

    def test_zero_bytes_no_channels(self, topo4):
        sim = simulate(one_f_one_b_schedule(4, 4), uniform_profile(), topo4)
        assert not sim.channel_busy


class TestDataParallelSemantics:
    def test_no_comm_no_overhead(self, topo4):
        profile = uniform_profile(weights=0)
        sched = data_parallel_schedule(4, 8, num_layers=4)
        sim = simulate(sched, profile, topo4, SimOptions(sync_mode="bsp"))
        assert sim.communication_overhead == pytest.approx(0.0, abs=1e-9)

    def test_allreduce_stall_formula(self):
        """Iteration = fwd + max(bwd, allreduce) under wait-free backprop."""
        topo = make_cluster("t", 4, 1, 10.0, 10.0)
        # One layer: fwd 1, bwd 2; weights 100 bytes.
        layers = [LayerProfile("l", 3.0, 0, 100, forward_time=1.0)]
        profile = ModelProfile("m", layers, batch_size=1)
        sched = data_parallel_schedule(4, 10, num_layers=1)
        sim = simulate(sched, profile, topo, SimOptions(sync_mode="bsp"))
        ar = 2 * 0.75 * 100 / 10.0  # 15s > bwd 2s
        per_iter = 1.0 + max(2.0, ar)
        assert sim.total_time == pytest.approx(10 * per_iter, rel=1e-6)

    def test_overhead_increases_with_weights(self):
        topo = make_cluster("t", 4, 1, 10.0, 10.0)
        def run(wbytes):
            layers = [LayerProfile("l", 3.0, 0, wbytes)]
            profile = ModelProfile("m", layers, batch_size=1)
            sched = data_parallel_schedule(4, 6, num_layers=1)
            return simulate(sched, profile, topo, SimOptions(sync_mode="bsp"))
        low = run(1)
        high = run(1000)
        assert high.communication_overhead > low.communication_overhead


class TestGPipeSemantics:
    def test_flush_gates_next_batch(self, topo4):
        profile = uniform_profile(n=2)
        sched = gpipe_schedule(2, num_batches=3, num_microbatches=2)
        sim = simulate(sched, profile, topo4,
                       SimOptions(sync_mode="gpipe", microbatches_per_batch=2))
        # Batch k+1's first forward starts after batch k's last backward.
        stage0 = [r for r in sim.records if r.worker == 0]
        f_batch1 = next(r for r in stage0
                        if r.op.kind == OpKind.FORWARD and r.op.minibatch == 2)
        b_batch0 = max(r.end for r in sim.records
                       if r.op.kind == OpKind.BACKWARD and r.op.minibatch in (0, 1)
                       and r.op.stage == 0)
        assert f_batch1.start >= b_batch0

    def test_recompute_inflates_backward(self, topo4):
        profile = uniform_profile(n=2)
        sched = gpipe_schedule(2, 2, 2)
        plain = simulate(sched, profile, topo4,
                         SimOptions(sync_mode="gpipe", microbatches_per_batch=2))
        recompute = simulate(sched, profile, topo4,
                             SimOptions(sync_mode="gpipe", microbatches_per_batch=2,
                                        recompute_activations=True))
        assert recompute.total_time > plain.total_time

    def test_gpipe_slower_than_1f1b(self, topo4):
        """§5.4: flushes cost throughput relative to 1F1B."""
        profile = uniform_profile(n=4)
        gp = simulate(gpipe_schedule(4, 8, 4), profile, topo4,
                      SimOptions(sync_mode="gpipe", microbatches_per_batch=4))
        pd = simulate(one_f_one_b_schedule(4, 32), profile, topo4)
        # Same 32 work items in both runs.
        assert pd.total_time < gp.total_time


class TestStageComputeTimes:
    def test_split_and_scale(self, toy_profile):
        fwd, bwd = stage_compute_times(toy_profile, [Stage(0, 3, 1), Stage(3, 5, 1)])
        assert fwd[0] + bwd[0] == pytest.approx(9.0)
        assert fwd[1] + bwd[1] == pytest.approx(3.0)
        fwd2, bwd2 = stage_compute_times(
            toy_profile, [Stage(0, 5, 1)], compute_scale=2.0
        )
        assert fwd2[0] + bwd2[0] == pytest.approx(6.0)

    def test_invalid_sync_mode_rejected(self):
        with pytest.raises(ValueError):
            SimOptions(sync_mode="wat")
