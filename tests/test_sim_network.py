"""Placement, link bandwidths, and all_reduce cost model."""

import pytest

from repro.core.topology import make_cluster
from repro.sim.network import Placement, allreduce_time, transfer_time


@pytest.fixture
def placement():
    # 2 servers x 4 GPUs; intra 100 B/s, inter 10 B/s.
    return Placement(make_cluster("t", 4, 2, 100.0, 10.0))


class TestPlacement:
    def test_coordinates_pack_innermost_first(self, placement):
        assert placement.coordinates(0) == (0, 0)
        assert placement.coordinates(3) == (3, 0)
        assert placement.coordinates(4) == (0, 1)
        assert placement.coordinates(7) == (3, 1)

    def test_intra_server_bandwidth(self, placement):
        assert placement.link_bandwidth(0, 3) == 100.0

    def test_inter_server_bandwidth(self, placement):
        assert placement.link_bandwidth(0, 4) == 10.0
        assert placement.link_bandwidth(3, 4) == 10.0

    def test_self_link_infinite(self, placement):
        assert placement.link_bandwidth(2, 2) == float("inf")

    def test_group_span(self, placement):
        assert placement.group_span([0, 1, 2, 3]) == [4, 1]
        assert placement.group_span([0, 4]) == [2, 2]
        assert placement.group_span(list(range(8))) == [8, 2]


class TestTransferTime:
    def test_intra(self, placement):
        assert transfer_time(placement, 0, 1, 200.0) == pytest.approx(2.0)

    def test_inter(self, placement):
        assert transfer_time(placement, 0, 4, 200.0) == pytest.approx(20.0)

    def test_zero_bytes(self, placement):
        assert transfer_time(placement, 0, 1, 0.0) == 0.0

    def test_same_worker(self, placement):
        assert transfer_time(placement, 2, 2, 1e9) == 0.0


class TestAllReduce:
    def test_single_worker_free(self, placement):
        assert allreduce_time(placement, [0], 1000.0) == 0.0

    def test_intra_server_ring(self, placement):
        # 4 workers, one server: 2*(3/4)*bytes / 100
        t = allreduce_time(placement, [0, 1, 2, 3], 400.0)
        assert t == pytest.approx(2 * 0.75 * 400.0 / 100.0)

    def test_cross_server_hierarchical(self, placement):
        # 8 workers over 2 servers: intra ring of 4 + inter ring of 2.
        t = allreduce_time(placement, list(range(8)), 400.0)
        expected = 2 * 0.75 * 400 / 100 + 2 * 0.5 * 400 / 10
        assert t == pytest.approx(expected)

    def test_two_workers_across_servers(self, placement):
        t = allreduce_time(placement, [0, 4], 100.0)
        assert t == pytest.approx(2 * 0.5 * 100 / 10)

    def test_more_workers_cost_more_over_slow_links(self, placement):
        t4 = allreduce_time(placement, [0, 1, 2, 3], 400.0)
        t8 = allreduce_time(placement, list(range(8)), 400.0)
        assert t8 > t4
