"""Strategy drivers and memory accounting (Figures 14, 16, 17, 18)."""

import pytest

from repro.core.partition import Stage
from repro.core.profile import LayerProfile, ModelProfile
from repro.core.topology import cluster_a, make_cluster
from repro.profiler import analytic_profile
from repro.sim import (
    data_parallel_memory_footprint,
    pipeline_memory_footprint,
    simulate_data_parallel,
    simulate_gpipe,
    simulate_model_parallel,
    simulate_partition,
    simulate_pipedream,
)
from repro.sim.strategies import balanced_straight_stages


@pytest.fixture(scope="module")
def vgg():
    return analytic_profile("vgg16")


@pytest.fixture(scope="module")
def topo():
    return cluster_a(4)  # 16 GPUs


class TestDrivers:
    def test_dp_reports_overhead(self, vgg, topo):
        result = simulate_data_parallel(vgg, topo, num_minibatches=6)
        assert 0.0 < result.communication_overhead < 1.0
        assert result.strategy == "dp"
        assert result.num_workers == 16

    def test_pipedream_beats_dp_on_vgg(self, vgg, topo):
        """The headline Table 1 shape: PipeDream > DP for VGG-16."""
        dp = simulate_data_parallel(vgg, topo, num_minibatches=6)
        pd = simulate_pipedream(vgg, topo, num_minibatches=24)
        assert pd.samples_per_second > 1.5 * dp.samples_per_second

    def test_pipedream_beats_model_parallel(self, vgg, topo):
        """Figure 14a: pipelining alone gives >= 2x over MP."""
        sub = topo.subset(4)
        mp = simulate_model_parallel(vgg, sub, num_minibatches=8)
        pd = simulate_pipedream(vgg, sub, num_minibatches=24)
        assert pd.samples_per_second > 2 * mp.samples_per_second

    def test_gpipe_slower_than_pipedream(self, vgg, topo):
        """§5.4: GPipe's flushes lose throughput at equal pipeline depth."""
        sub = topo.subset(4)
        stages = balanced_straight_stages(vgg, 4)
        gp = simulate_gpipe(vgg, sub, stages=stages, num_batches=6,
                            num_microbatches=4)
        pd = simulate_partition(vgg, sub, stages, num_minibatches=24)
        assert pd.samples_per_second > gp.samples_per_second

    def test_partition_reports_communication(self, vgg, topo):
        # 3-1: conv body replicated, the weight-heavy FC tail isolated — the
        # 4-worker analogue of the paper's 15-1 configuration.
        fc6 = next(i for i, l in enumerate(vgg.layers) if l.name == "fc6")
        stages = [Stage(0, fc6, 3), Stage(fc6, len(vgg), 1)]
        result = simulate_partition(vgg, topo.subset(4), stages, num_minibatches=8)
        dp = simulate_data_parallel(vgg, topo.subset(4), num_minibatches=4)
        # Figure 17: the best non-DP config communicates >85% less than DP
        # for VGG-16.
        assert result.bytes_per_sample < 0.15 * dp.bytes_per_sample

    def test_config_strings(self, vgg, topo):
        stages = [Stage(0, len(vgg) - 1, 3), Stage(len(vgg) - 1, len(vgg), 1)]
        result = simulate_partition(vgg, topo.subset(4), stages, num_minibatches=8)
        assert result.config == "3-1"


class TestBalancedStraightStages:
    def test_covers_model(self, vgg):
        stages = balanced_straight_stages(vgg, 4)
        assert stages[0].start == 0 and stages[-1].stop == len(vgg)
        assert len(stages) == 4

    def test_roughly_balanced(self, vgg):
        stages = balanced_straight_stages(vgg, 4)
        times = [vgg.compute_time(s.start, s.stop) for s in stages]
        assert max(times) < 2.5 * (sum(times) / len(times))

    def test_more_stages_than_layers_clamped(self, toy_profile):
        stages = balanced_straight_stages(toy_profile, 100)
        assert len(stages) == len(toy_profile)


class TestMemoryFootprints:
    def test_pipeline_on_par_with_dp(self, vgg):
        """Figure 16: worst-stage footprint stays the same order as DP's.

        The input stage stashes NOAM copies of its activations, so a
        compute-balanced 4-stage VGG split lands within a small multiple of
        the DP footprint rather than NOAM x the total.
        """
        stages = balanced_straight_stages(vgg, 4)
        pipeline = pipeline_memory_footprint(vgg, stages)
        dp = data_parallel_memory_footprint(vgg)
        assert max(pipeline) < 2.5 * dp
        # Later stages hold progressively less than DP.
        assert pipeline[-1] < dp

    def test_input_stage_stashes_most(self, toy_profile):
        stages = [Stage(0, 3, 1), Stage(3, 4, 1), Stage(4, 5, 1)]
        footprints = pipeline_memory_footprint(toy_profile, stages)
        weights = [toy_profile.weight_bytes(s.start, s.stop) for s in stages]
        # Versions held: 3, 2, 1 respectively.
        depths = [f / (w + a) for f, w, a in zip(
            footprints, weights,
            [1000 + 800 + 600, 100, 50],
        )]
        assert depths == [3, 2, 1]

    def test_depth_override_scales_memory(self, toy_profile):
        stages = [Stage(0, 3, 1), Stage(3, 5, 1)]
        shallow = pipeline_memory_footprint(toy_profile, stages, in_flight=[1, 1])
        deep = pipeline_memory_footprint(toy_profile, stages, in_flight=[4, 4])
        assert all(d == 4 * s for d, s in zip(deep, shallow))

    def test_dp_footprint(self, toy_profile):
        assert data_parallel_memory_footprint(toy_profile) == 9600 + 2550


class TestPipeDreamChoices:
    def test_vgg_isolates_fc_stage(self, vgg, topo):
        """VGG's optimizer output keeps the big-FC tail unreplicated."""
        result = simulate_pipedream(vgg, topo, num_minibatches=16)
        assert result.config != str(topo.total_workers)  # not plain DP

    def test_straight_for_weight_heavy_lm(self, topo):
        lm = analytic_profile("awd-lm")
        result = simulate_pipedream(lm, topo.subset(4), num_minibatches=16)
        assert result.config in ("straight", "1-1-1-1")

    def test_fp16_increases_dp_overhead_ratio(self, topo):
        """Figure 12's shape: fp16 halves bytes but compute per byte ratio
        keeps DP comm-bound; overhead (fraction) stays significant."""
        gnmt = analytic_profile("gnmt8", bytes_per_element=4)
        gnmt16 = analytic_profile("gnmt8", bytes_per_element=2)
        fp32 = simulate_data_parallel(gnmt, topo, num_minibatches=4)
        fp16 = simulate_data_parallel(gnmt16, topo, num_minibatches=4)
        assert fp16.communication_overhead > 0.2
        assert fp32.communication_overhead >= fp16.communication_overhead
