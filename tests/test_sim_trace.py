"""Chrome-trace export and straggler modelling."""

import json

import pytest

from repro.core.profile import LayerProfile, ModelProfile
from repro.core.schedule import one_f_one_b_schedule
from repro.core.topology import make_cluster
from repro.sim import SimOptions, chrome_trace_events, export_chrome_trace, simulate


@pytest.fixture
def sim_result():
    layers = [LayerProfile(f"l{i}", 3.0, 0, 0) for i in range(3)]
    profile = ModelProfile("m", layers, batch_size=1)
    topology = make_cluster("t", 3, 1, 1e9, 1e9)
    return simulate(one_f_one_b_schedule(3, 6), profile, topology)


class TestChromeTrace:
    def test_events_cover_all_ops(self, sim_result):
        events = chrome_trace_events(sim_result)
        complete = [e for e in events if e["ph"] == "X"]
        # 6 minibatches x 3 stages x (F + B); zero-length updates dropped.
        assert len(complete) == 36

    def test_thread_metadata(self, sim_result):
        events = chrome_trace_events(sim_result)
        names = [e for e in events if e["ph"] == "M"]
        assert {e["tid"] for e in names} == {0, 1, 2}

    def test_durations_positive_and_ordered(self, sim_result):
        for event in chrome_trace_events(sim_result):
            if event["ph"] == "X":
                assert event["dur"] > 0
                assert event["ts"] >= 0

    def test_export_writes_valid_json(self, sim_result, tmp_path):
        path = export_chrome_trace(sim_result, str(tmp_path / "trace.json"))
        data = json.loads(open(path).read())
        assert "traceEvents" in data
        assert len(data["traceEvents"]) > 0


class TestStragglers:
    def _run(self, worker_speed=None):
        layers = [LayerProfile(f"l{i}", 3.0, 0, 0) for i in range(4)]
        profile = ModelProfile("m", layers, batch_size=1)
        topology = make_cluster("t", 4, 1, 1e9, 1e9)
        options = SimOptions(worker_speed=worker_speed)
        return simulate(one_f_one_b_schedule(4, 24), profile, topology, options)

    def test_uniform_speed_unchanged(self):
        base = self._run()
        same = self._run(worker_speed={w: 1.0 for w in range(4)})
        assert same.total_time == pytest.approx(base.total_time)

    def test_straggler_bottlenecks_pipeline(self):
        """A 2x-slow stage halves steady-state throughput (the pipeline is
        only as fast as its slowest stage, §3.1)."""
        base = self._run()
        slowed = self._run(worker_speed={1: 0.5})
        assert slowed.steady_state_throughput == pytest.approx(
            base.steady_state_throughput / 2, rel=0.1
        )

    def test_faster_worker_does_not_help_alone(self):
        """Speeding up one stage cannot beat the remaining bottleneck."""
        base = self._run()
        boosted = self._run(worker_speed={1: 4.0})
        assert boosted.steady_state_throughput == pytest.approx(
            base.steady_state_throughput, rel=0.1
        )

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            SimOptions(worker_speed={0: 0.0})


class TestNicContention:
    def _run(self, contention, minibatches=4):
        """One producer fanning out to two consumers stresses its send NIC:
        the warmup burst emits back-to-back activations to different
        replicas, which overlap on independent channels but serialize on a
        single NIC."""
        from repro.core.partition import Stage
        from repro.core.schedule import one_f_one_b_rr_schedule

        layers = [LayerProfile("a", 3.0, 1000, 0), LayerProfile("b", 3.0, 10, 0)]
        profile = ModelProfile("m", layers, batch_size=1)
        stages = [Stage(0, 1, 1), Stage(1, 2, 2)]
        schedule = one_f_one_b_rr_schedule(stages, minibatches)
        topology = make_cluster("t", 3, 1, 100.0, 100.0)  # 10 s per transfer
        return simulate(schedule, profile, topology,
                        SimOptions(nic_contention=contention))

    def test_contention_never_faster(self):
        free = self._run(False)
        contended = self._run(True)
        assert contended.total_time >= free.total_time

    def test_fanout_burst_serializes(self):
        """The warmup burst's two transfers leave 10 s apart instead of
        concurrently, delaying minibatch 1's first arrival by ~one transfer."""
        free = self._run(False)
        contended = self._run(True)
        delay = contended.minibatch_done[1] - free.minibatch_done[1]
        assert delay >= 6.0
        assert contended.minibatch_done[2] - free.minibatch_done[2] >= 8.0

    def test_straight_pipeline_unaffected(self):
        """One flow per NIC direction: contention changes nothing."""
        from repro.core.schedule import one_f_one_b_schedule

        layers = [LayerProfile("a", 3.0, 1000, 0), LayerProfile("b", 3.0, 10, 0)]
        profile = ModelProfile("m", layers, batch_size=1)
        topology = make_cluster("t", 2, 1, 100.0, 100.0)
        schedule = one_f_one_b_schedule(2, 6)
        free = simulate(schedule, profile, topology, SimOptions())
        contended = simulate(schedule, profile, topology,
                             SimOptions(nic_contention=True))
        assert contended.total_time == free.total_time

    def test_default_off(self):
        assert SimOptions().nic_contention is False
