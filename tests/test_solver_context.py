"""Warm-started solves are bitwise-identical to cold solves.

The :class:`SolverContext` reuse layers (level tables, bound matrices,
comm tables, suffix-DP rows) are pure caches of deterministic
intermediates, so a warm-started :meth:`PipeDreamOptimizer.solve` must
return exactly — bitwise — what a cold solve returns, across every axis a
planner service varies: worker count, memory cap, precision, solver
options, and both scalar/vectorized twins.
"""

import threading

import pytest

from repro.core.partition import (
    PipeDreamOptimizer,
    SolverContext,
    SolverContextPool,
)
from repro.core.topology import cluster_a, cluster_b
from repro.profiler import analytic_profile

TOPO = cluster_a(4)  # 16 workers
LIMIT = 16e9


def cold_solve(profile, workers, **kwargs):
    return PipeDreamOptimizer(profile, TOPO, **kwargs).solve(workers)


def assert_same_plan(a, b):
    assert a.stages == b.stages
    assert a.slowest_stage_time == b.slowest_stage_time
    assert a.memory_bytes == b.memory_bytes
    assert a.num_workers == b.num_workers


class TestWarmStartBitwise:
    @pytest.mark.parametrize("model", ["vgg16", "gnmt8"])
    def test_worker_count_axis(self, model):
        profile = analytic_profile(model)
        context = SolverContext(profile)
        for workers in (16, 8, 4, 2):
            warm = PipeDreamOptimizer(
                profile, TOPO, memory_limit_bytes=LIMIT, context=context
            ).solve(workers)
            assert_same_plan(
                warm, cold_solve(profile, workers, memory_limit_bytes=LIMIT)
            )
        stats = context.stats()
        assert stats["solves"] == 4
        assert stats["row_hits"] > 0, "suffix rows must be reused across counts"

    def test_memory_cap_axis(self):
        profile = analytic_profile("vgg16")
        context = SolverContext(profile)
        for cap in (16e9, 12e9, 8e9, None):
            warm = PipeDreamOptimizer(
                profile, TOPO, memory_limit_bytes=cap, context=context
            ).solve(16)
            assert_same_plan(
                warm, cold_solve(profile, 16, memory_limit_bytes=cap)
            )
        stats = context.stats()
        # The bound matrix never depends on the cap: one build, then hits.
        assert stats["bound_misses"] == 1
        assert stats["bound_hits"] >= 2
        # Comm tables are per-topology-signature, shared across caps.
        assert stats["comm_hits"] >= 2

    def test_precision_axis_distinct_contexts(self):
        fp32 = analytic_profile("gnmt8")
        fp16 = analytic_profile("gnmt8", bytes_per_element=2)
        pool = SolverContextPool()
        assert pool.get(fp32) is not pool.get(fp16)
        for profile in (fp32, fp16):
            warm = PipeDreamOptimizer(
                profile, TOPO, memory_limit_bytes=LIMIT,
                context=pool.get(profile),
            ).solve(16)
            assert_same_plan(
                warm, cold_solve(profile, 16, memory_limit_bytes=LIMIT)
            )

    def test_option_axes_never_collide(self):
        """Replication/refine/vectorize variants share one context safely."""
        profile = analytic_profile("vgg16")
        context = SolverContext(profile)
        variants = [
            dict(memory_limit_bytes=LIMIT),
            dict(memory_limit_bytes=LIMIT, memory_refine=False),
            dict(memory_limit_bytes=LIMIT, allow_replication=False),
            dict(memory_limit_bytes=LIMIT, vectorize=False),
            dict(),
        ]
        # Interleave two passes so every variant both writes and re-reads.
        for _ in range(2):
            for kwargs in variants:
                warm = PipeDreamOptimizer(
                    profile, TOPO, context=context, **kwargs
                ).solve(16)
                assert_same_plan(warm, cold_solve(profile, 16, **kwargs))

    def test_refined_mode_scalar_twin(self):
        profile = analytic_profile("vgg16")
        context = SolverContext(profile)
        for workers in (16, 8):
            warm = PipeDreamOptimizer(
                profile, TOPO, memory_limit_bytes=7e9, vectorize=False,
                context=context,
            ).solve(workers)
            assert_same_plan(
                warm,
                cold_solve(profile, workers, memory_limit_bytes=7e9,
                           vectorize=False),
            )
        assert context.stats()["row_hits"] > 0

    def test_cross_topology_shapes_share_context(self):
        """One context serves different clusters; keys keep them apart."""
        profile = analytic_profile("resnet50")
        context = SolverContext(profile)
        topo_b = cluster_b(2)  # 16 workers, NVLink intra
        warm_a = PipeDreamOptimizer(
            profile, TOPO, memory_limit_bytes=LIMIT, context=context
        ).solve(16)
        warm_b = PipeDreamOptimizer(
            profile, topo_b, memory_limit_bytes=LIMIT, context=context
        ).solve(16)
        assert_same_plan(warm_a, cold_solve(profile, 16, memory_limit_bytes=LIMIT))
        cold_b = PipeDreamOptimizer(
            profile, topo_b, memory_limit_bytes=LIMIT
        ).solve(16)
        assert_same_plan(warm_b, cold_b)


class TestTpNamespace:
    """Tensor-parallel menus get their own cache namespace inside a
    shared context: interleaving tp and non-tp queries (or two different
    menus) must never serve one query a row cached by the other."""

    def test_tp_and_plain_queries_never_collide(self):
        profile = analytic_profile("vgg16")
        context = SolverContext(profile)
        variants = [
            dict(memory_limit_bytes=LIMIT),
            dict(memory_limit_bytes=LIMIT, tp_degrees=(1, 2)),
            dict(memory_limit_bytes=LIMIT, tp_degrees=(1, 2, 4)),
            dict(tp_degrees=(1, 2)),
            dict(),
        ]
        # Interleave two passes so every variant both writes and re-reads
        # warm state that a colliding namespace would cross-contaminate.
        for _ in range(2):
            for kwargs in variants:
                warm = PipeDreamOptimizer(
                    profile, TOPO, context=context, **kwargs
                ).solve(16)
                assert_same_plan(warm, cold_solve(profile, 16, **kwargs))

    def test_degenerate_menu_shares_the_default_namespace(self):
        """``tp_degrees=(1,)`` is the disabled axis: it must warm-hit the
        rows a plain query populated (one bound build, not two)."""
        profile = analytic_profile("vgg16")
        context = SolverContext(profile)
        plain = PipeDreamOptimizer(
            profile, TOPO, memory_limit_bytes=LIMIT, context=context
        ).solve(16)
        before = context.stats()["bound_misses"]
        degenerate = PipeDreamOptimizer(
            profile, TOPO, memory_limit_bytes=LIMIT, tp_degrees=(1,),
            context=context,
        ).solve(16)
        assert_same_plan(degenerate, plain)
        assert context.stats()["bound_misses"] == before

    def test_tp_warm_solves_reuse_rows_across_counts(self):
        profile = analytic_profile("vgg16")
        context = SolverContext(profile)
        for workers in (16, 8, 4):
            warm = PipeDreamOptimizer(
                profile, TOPO, memory_limit_bytes=LIMIT,
                tp_degrees=(1, 2), context=context,
            ).solve(workers)
            assert_same_plan(
                warm,
                cold_solve(profile, workers, memory_limit_bytes=LIMIT,
                           tp_degrees=(1, 2)),
            )
        assert context.stats()["row_hits"] > 0


class TestContextSafety:
    def test_profile_mismatch_rejected(self):
        vgg = analytic_profile("vgg16")
        resnet = analytic_profile("resnet50")
        context = SolverContext(vgg)
        with pytest.raises(ValueError, match="different profile"):
            PipeDreamOptimizer(resnet, TOPO, context=context)

    def test_equal_valued_profile_accepted(self):
        profile = analytic_profile("vgg16", cache=False)
        twin = analytic_profile("vgg16", cache=False)
        assert profile is not twin
        context = SolverContext(profile)
        warm = PipeDreamOptimizer(twin, TOPO, context=context).solve(16)
        assert_same_plan(warm, cold_solve(profile, 16))

    def test_concurrent_solves_match_cold(self):
        profile = analytic_profile("gnmt8")
        context = SolverContext(profile)
        expected = {
            workers: cold_solve(profile, workers, memory_limit_bytes=LIMIT)
            for workers in (16, 8, 4)
        }
        failures = []
        barrier = threading.Barrier(6)

        def worker(workers):
            barrier.wait()
            got = PipeDreamOptimizer(
                profile, TOPO, memory_limit_bytes=LIMIT, context=context
            ).solve(workers)
            want = expected[workers]
            if (got.stages, got.slowest_stage_time) != (
                want.stages, want.slowest_stage_time
            ):
                failures.append(workers)

        threads = [
            threading.Thread(target=worker, args=(w,))
            for w in (16, 8, 4) * 2
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures


class TestContextPool:
    def test_one_context_per_digest(self):
        pool = SolverContextPool()
        a = analytic_profile("vgg16")
        assert pool.get(a) is pool.get(a)
        assert len(pool) == 1
        pool.get(analytic_profile("resnet50"))
        assert len(pool) == 2

    def test_bounded_eviction(self):
        pool = SolverContextPool(capacity=2)
        profiles = [
            analytic_profile(m) for m in ("vgg16", "resnet50", "alexnet")
        ]
        first = pool.get(profiles[0])
        pool.get(profiles[1])
        pool.get(profiles[2])  # evicts vgg16
        assert len(pool) == 2
        assert pool.get(profiles[0]) is not first  # rebuilt after eviction

    def test_stats_shape(self):
        pool = SolverContextPool()
        profile = analytic_profile("vgg16")
        PipeDreamOptimizer(profile, TOPO, context=pool.get(profile)).solve(16)
        stats = pool.stats()
        assert stats["pool"]["entries"] == 1
        assert stats["contexts"]["vgg16"]["solves"] == 1
