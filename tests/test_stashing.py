"""Weight stashing and vertical sync (§3.3)."""

import numpy as np
import pytest

from repro.core.stashing import WeightStore, WeightVersion


def make_store(policy="stashing"):
    return WeightStore({"w": np.zeros(3), "b": np.ones(1)}, policy=policy)


class TestBasics:
    def test_initial_version_zero(self):
        store = make_store()
        assert store.latest_version == 0
        assert store.live_versions() == [0]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            WeightStore({"w": np.zeros(1)}, policy="bogus")

    def test_initial_state_is_copied(self):
        arr = np.zeros(3)
        store = WeightStore({"w": arr})
        arr[0] = 99.0
        assert store.weights_for_forward(0).get("w")[0] == 0.0

    def test_commit_bumps_version(self):
        store = make_store()
        v = store.commit({"w": np.ones(3), "b": np.ones(1)})
        assert v == 1
        assert store.latest_version == 1

    def test_commit_copies_state(self):
        store = make_store()
        state = {"w": np.ones(3), "b": np.ones(1)}
        store.commit(state)
        state["w"][0] = 42.0
        assert store.weights_for_forward(0).get("w")[0] == 1.0


class TestStashingPolicy:
    def test_backward_gets_forward_version(self):
        store = make_store()
        v0 = store.weights_for_forward(0)
        store.commit({"w": np.ones(3), "b": np.ones(1)})
        v_fwd1 = store.weights_for_forward(1)
        assert store.weights_for_backward(0).version == v0.version == 0
        assert store.weights_for_backward(1).version == v_fwd1.version == 1

    def test_backward_without_forward_raises(self):
        store = make_store()
        with pytest.raises(KeyError):
            store.weights_for_backward(7)

    def test_old_versions_collected_after_backward(self):
        store = make_store()
        store.weights_for_forward(0)
        store.commit({"w": np.ones(3), "b": np.ones(1)})
        assert store.num_live_versions == 2  # version 0 kept for mb 0
        store.weights_for_backward(0)
        assert store.live_versions() == [1]

    def test_versions_bounded_by_in_flight(self):
        store = make_store()
        for mb in range(5):
            store.weights_for_forward(mb)
            store.commit({"w": np.full(3, mb + 1.0), "b": np.ones(1)})
        # 5 in-flight minibatches -> versions 0..4 stashed plus latest 5.
        assert store.num_live_versions == 6
        for mb in range(5):
            assert store.weights_for_backward(mb).version == mb
        assert store.live_versions() == [5]

    def test_stashed_version_query(self):
        store = make_store()
        store.weights_for_forward(3)
        assert store.stashed_version(3) == 0
        assert store.stashed_version(9) is None

    def test_memory_bytes_counts_versions(self):
        store = make_store()
        one = store.memory_bytes()
        store.weights_for_forward(0)
        store.commit({"w": np.ones(3), "b": np.ones(1)})
        assert store.memory_bytes() == 2 * one

    def test_pin_rejected_outside_vertical_sync(self):
        store = make_store()
        with pytest.raises(RuntimeError):
            store.pin(0, 0)


class TestNaivePolicy:
    def test_backward_uses_latest(self):
        store = make_store(policy="none")
        store.weights_for_forward(0)
        store.commit({"w": np.ones(3), "b": np.ones(1)})
        assert store.weights_for_backward(0).version == 1  # mismatch!

    def test_no_stash_accumulation(self):
        store = make_store(policy="none")
        for mb in range(4):
            store.weights_for_forward(mb)
        store.commit({"w": np.ones(3), "b": np.ones(1)})
        assert store.num_live_versions == 1


class TestVerticalSync:
    def test_pin_selects_old_version(self):
        store = make_store(policy="vertical_sync")
        store.weights_for_forward(0)
        store.commit({"w": np.ones(3), "b": np.ones(1)})
        store.pin(1, 0)
        assert store.weights_for_forward(1).version == 0

    def test_versions_retained_until_released(self):
        store = make_store(policy="vertical_sync")
        # Commit versions 1..3 with nothing stashed: a naive GC would drop
        # 0..2, but a later minibatch may still arrive pinned to them.
        for i in range(3):
            store.commit({"w": np.full(3, i + 1.0), "b": np.ones(1)})
        assert store.live_versions() == [0, 1, 2, 3]

    def test_release_after_backward(self):
        store = make_store(policy="vertical_sync")
        store.pin(0, 0)
        store.weights_for_forward(0)
        store.commit({"w": np.ones(3), "b": np.ones(1)})
        store.commit({"w": np.full(3, 2.0), "b": np.ones(1)})
        store.pin(1, 1)
        store.weights_for_forward(1)
        store.weights_for_backward(0)  # releases versions < 0 (none)
        assert store.weights_for_backward(1).version == 1
        # After backward with pin 1, version 0 can be collected.
        assert 0 not in store.live_versions()

    def test_pin_falls_back_to_nearest_older(self):
        store = make_store(policy="vertical_sync")
        store.commit({"w": np.ones(3), "b": np.ones(1)})
        store.pin(5, 99)  # future version: resolve to newest available <= 99
        assert store.weights_for_forward(5).version == 1
