"""The dependency-free SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.utils.svgplot import BarChart, LineChart, _nice_ticks


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.3, 9.7)
        assert ticks[0] <= 0.3
        assert ticks[-1] >= 9.7

    def test_monotone(self):
        ticks = _nice_ticks(-5.0, 123.0)
        assert ticks == sorted(ticks)

    def test_degenerate_range(self):
        ticks = _nice_ticks(2.0, 2.0)
        assert len(ticks) >= 2

    @pytest.mark.parametrize("low,high", [(0, 1), (0, 0.07), (10, 1e6), (-3, 3)])
    def test_various_scales(self, low, high):
        ticks = _nice_ticks(low, high)
        assert 2 <= len(ticks) <= 12


class TestLineChart:
    def make(self):
        chart = LineChart("throughput", x_label="workers", y_label="mb/s")
        chart.add_series("dp", [(1, 1.0), (2, 1.5), (4, 1.8)])
        chart.add_series("pipedream", [(1, 1.0), (2, 2.0), (4, 3.9)])
        return chart

    def test_valid_xml(self):
        root = parse(self.make().to_svg())
        assert root.tag.endswith("svg")

    def test_one_polyline_per_series(self):
        root = parse(self.make().to_svg())
        polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
        assert len(polylines) == 2

    def test_markers_per_point(self):
        root = parse(self.make().to_svg())
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        assert len(circles) == 6

    def test_legend_labels_present(self):
        svg = self.make().to_svg()
        assert "dp" in svg and "pipedream" in svg

    def test_title_escaped(self):
        chart = LineChart("a < b & c")
        chart.add_series("s", [(0, 1), (1, 2)])
        root = parse(chart.to_svg())  # would raise on bad escaping
        assert root is not None

    def test_percent_axis(self):
        chart = LineChart("overhead", y_percent=True)
        chart.add_series("s", [(1, 0.1), (2, 0.9)])
        assert "%" in chart.to_svg()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LineChart("empty").to_svg()

    def test_save(self, tmp_path):
        path = self.make().save(str(tmp_path / "chart.svg"))
        parse(open(path).read())

    def test_higher_value_higher_on_screen(self):
        """SVG y grows downward: larger data y => smaller pixel y."""
        chart = LineChart("t")
        chart.add_series("s", [(0, 0.0), (1, 10.0)])
        root = parse(chart.to_svg())
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        y_low = float(circles[0].get("cy"))
        y_high = float(circles[1].get("cy"))
        assert y_high < y_low


class TestBarChart:
    def make(self):
        chart = BarChart("speedup", categories=["vgg16", "resnet50"],
                         y_label="x over DP")
        chart.add_series("pipedream", [5.28, 1.0])
        chart.add_series("gpipe", [3.1, 0.9])
        return chart

    def test_valid_xml_and_bar_count(self):
        root = parse(self.make().to_svg())
        bars = [e for e in root.iter() if e.tag.endswith("rect")]
        # background + frame + 2 legend swatches + 4 data bars
        data_bars = [b for b in bars if b.get("fill", "").startswith("#")
                     and b.get("fill") != "#333"]
        assert len(data_bars) >= 4

    def test_mismatched_values_rejected(self):
        chart = BarChart("t", categories=["a", "b"])
        with pytest.raises(ValueError):
            chart.add_series("s", [1.0])

    def test_category_labels_present(self):
        svg = self.make().to_svg()
        assert "vgg16" in svg and "resnet50" in svg

    def test_save(self, tmp_path):
        path = self.make().save(str(tmp_path / "bars.svg"))
        parse(open(path).read())
