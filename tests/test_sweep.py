"""The sweep harness and CSV export."""

import csv
import io

import pytest

from repro.core.topology import cluster_a
from repro.sim.sweep import SweepRecord, records_to_csv, run_sweep, speedup_table


@pytest.fixture(scope="module")
def records():
    return run_sweep(
        models=["vgg16", "resnet50"],
        topology=cluster_a(2),
        worker_counts=[4, 8],
        strategies=("dp", "pipedream"),
        minibatches=24,
    )


class TestRunSweep:
    def test_full_grid(self, records):
        assert len(records) == 2 * 2 * 2  # models x worker counts x strategies

    def test_unpackable_counts_skipped(self):
        out = run_sweep(["vgg16"], cluster_a(2), worker_counts=[6, 4],
                        strategies=("dp",), minibatches=8)
        assert [r.workers for r in out] == [4]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(["vgg16"], cluster_a(1), [4], strategies=("nope",))

    def test_records_carry_metrics(self, records):
        for record in records:
            assert record.samples_per_second > 0
            assert 0.0 <= record.communication_overhead <= 1.0
            assert record.peak_memory_gb > 0

    def test_pipedream_beats_dp_for_vgg(self, records):
        by = {(r.model, r.workers, r.strategy): r for r in records}
        assert (by[("vgg16", 8, "pipedream")].samples_per_second
                > by[("vgg16", 8, "dp")].samples_per_second)


class TestCsv:
    def test_round_trips_through_csv_reader(self, records):
        text = records_to_csv(records)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(records)
        assert rows[0]["model"] == records[0].model

    def test_writes_file(self, records, tmp_path):
        path = tmp_path / "sweep.csv"
        records_to_csv(records, str(path))
        assert path.read_text().startswith("model,")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            records_to_csv([])


class TestSpeedupTable:
    def test_rows_per_model_and_scale(self, records):
        rows = speedup_table(records)
        assert len(rows) == 4  # 2 models x 2 scales, one non-baseline strategy
        for row in rows:
            assert row["strategy"] == "pipedream"
            assert row["speedup"] > 0

    def test_resnet_speedup_is_one(self, records):
        rows = speedup_table(records)
        resnet = [r for r in rows if r["model"] == "resnet50"]
        assert all(abs(r["speedup"] - 1.0) < 0.05 for r in resnet)
