"""Parallel ``run_sweep`` is an optimization, not a semantic change.

``workers=N`` fans the (model, strategy) cells over a process or thread
pool; the records must be *identical* (same keys, same floats, same
order) to the ``workers=1`` serial fallback.  A raising cell must not
kill the sweep: every other cell completes and the failure is reported
per cell via :class:`SweepError` (or dropped with ``on_error="skip"``).
"""

import pytest

from repro.core.topology import cluster_a
from repro.profiler import clear_profile_cache
from repro.sim import SweepError, run_sweep
from repro.sim import sweep as sweep_mod

TOPO = cluster_a(4)
MODELS = ["vgg16", "resnet50"]
COUNTS = [4, 8]


def run(**kwargs):
    defaults = dict(models=MODELS, topology=TOPO, worker_counts=COUNTS,
                    strategies=("dp", "pipedream"), minibatches=16)
    defaults.update(kwargs)
    return run_sweep(**defaults)


@pytest.fixture()
def serial_records():
    return run(workers=1)


@pytest.mark.parametrize("executor", ["process", "thread"])
def test_parallel_identical_to_serial(serial_records, executor):
    parallel = run(workers=2, executor=executor)
    assert len(parallel) == len(serial_records)
    # Cell-for-cell: same keys in the same order, bitwise-equal floats.
    for got, want in zip(parallel, serial_records):
        assert got == want


def test_more_workers_than_cells(serial_records):
    assert run(workers=32, executor="thread") == serial_records


def test_single_cell_grid_matches():
    serial = run(models=["vgg16"], strategies=("pipedream",), workers=1)
    parallel = run(models=["vgg16"], strategies=("pipedream",), workers=4,
                   executor="thread")
    assert parallel == serial


def test_profile_cache_does_not_change_results(serial_records):
    clear_profile_cache()
    cold = run(workers=2, executor="thread", profile_cache=False)
    clear_profile_cache()
    warm = run(workers=2, executor="thread", profile_cache=True)
    assert cold == serial_records
    assert warm == serial_records


def test_scalar_evaluator_matches_vectorized_keys(serial_records):
    scalar = run(workers=1, vectorize=False)
    assert [(r.model, r.workers, r.strategy) for r in scalar] == \
        [(r.model, r.workers, r.strategy) for r in serial_records]


def test_auto_executor_matches_serial(serial_records):
    assert run(workers=2, executor="auto") == serial_records


def test_serial_executor_explicit(serial_records):
    assert run(workers=2, executor="serial") == serial_records


def test_warm_contexts_do_not_change_results(serial_records):
    from repro.core.partition import SolverContextPool

    contexts = SolverContextPool()
    warm = run(workers=1, contexts=contexts)
    assert warm == serial_records
    # The pool actually served the sweep's pipedream cells.
    stats = contexts.stats()
    assert set(stats["contexts"]) == set(MODELS)
    assert all(ctx["solves"] > 0 for ctx in stats["contexts"].values())
    # And a second sweep over the same pool reuses tables, bitwise-equal.
    again = run(workers=1, contexts=contexts)
    assert again == serial_records


def test_warm_contexts_with_thread_pool(serial_records):
    from repro.core.partition import SolverContextPool

    assert run(workers=2, executor="thread",
               contexts=SolverContextPool()) == serial_records


def test_unknown_executor_rejected():
    with pytest.raises(ValueError, match="unknown executor"):
        run(workers=2, executor="goroutine")


def test_unknown_on_error_rejected():
    with pytest.raises(ValueError, match="unknown on_error"):
        run(on_error="explode")


# ----------------------------------------------------------------------
# Failure isolation: one bad cell must not kill the sweep.
# ----------------------------------------------------------------------

@pytest.fixture()
def failing_dp_for_resnet(monkeypatch):
    """Make the (resnet50, dp) cell raise; every other cell untouched."""
    original = sweep_mod.STRATEGIES["dp"]

    def exploding(profile, topo, m, **kw):
        if profile.model_name == "resnet50":
            raise RuntimeError("injected cell failure")
        return original(profile, topo, m, **kw)

    monkeypatch.setitem(sweep_mod.STRATEGIES, "dp", exploding)


@pytest.mark.parametrize("workers,executor", [(1, "process"), (2, "thread")])
def test_failing_cell_reported_per_cell(failing_dp_for_resnet, workers,
                                        executor):
    with pytest.raises(SweepError) as excinfo:
        run(workers=workers, executor=executor)
    error = excinfo.value
    assert len(error.failures) == 1
    failure = error.failures[0]
    assert failure.model == "resnet50"
    assert failure.strategy == "dp"
    assert "injected cell failure" in failure.error
    assert "(resnet50, dp, fp32)" in str(error)
    # The surviving cells all completed: every record except resnet50/dp.
    keys = {(r.model, r.strategy) for r in error.records}
    assert ("resnet50", "dp") not in keys
    assert ("resnet50", "pipedream") in keys
    assert ("vgg16", "dp") in keys


def test_on_error_skip_returns_survivors(serial_records,
                                         failing_dp_for_resnet):
    survivors = run(workers=2, executor="thread", on_error="skip")
    expected = [r for r in serial_records
                if not (r.model == "resnet50" and r.strategy == "dp")]
    assert survivors == expected
