"""Tensor parallelism as a third planning axis: the property sweep.

The hybrid 3D planner enumerates ``(replicas, tp_degree)`` cells per
stage span, prices the intra-stage collectives with the same ring model
the simulator runs, and divides only the *shardable* share of a stage's
bytes through the shared §3.3 memory kernel.  Three families of
properties pin the axis down:

* **tp=1 is a bitwise no-op** — with the degenerate menu ``(1,)`` (or no
  menu at all) every consumer (planner twins, evaluator twins, both sim
  engines, the sweep harness, the serve cache key) must produce results
  bitwise identical to the pre-tensor-parallel code paths.  The axis may
  not perturb a single historical float.
* **the superset invariant survives the new axis** — for every plan in
  the brute-force plan space, under every (recompute mask x tp
  assignment), ``bound-admitted ⊇ refined-admitted = footprint-feasible``
  still holds, so phase-1 pruning can never discard a plan that only
  becomes feasible through sharding.
* **memory is monotone in the degree** — sharding can only shrink a
  stage's footprint, strictly so when the stage actually holds shardable
  bytes.

Alongside: the mixed-span ring/α pricing regression (a dp replica group
of tp-group leaders spans *different* topology levels than the fused
``replicas x tp_degree`` span — α and the ring terms are charged per
active level per group, never per fused span) and the registry's
structural invariants.
"""

import dataclasses
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    RECURRENT_KINDS,
    PipeDreamOptimizer,
    Stage,
    evaluate_partition_details,
)
from repro.core.profile import LayerProfile, ModelProfile
from repro.core.schedule import warmup_count
from repro.core.sharding import (
    SHARDABLE_KINDS,
    is_shardable,
    shardable_activation_bytes,
    shardable_weight_bytes,
    validate_tp_degrees,
)
from repro.core.topology import Topology, TopologyLevel, cluster_a, make_cluster
from repro.profiler import analytic_profile
from repro.sim.memory import pipeline_memory_footprint, stage_memory_bytes
from repro.sim.network import Placement, allreduce_cost_factors, allreduce_time
from repro.sim.strategies import simulate_pipedream
from repro.sim.sweep import records_to_csv, run_sweep

TOPO_A = cluster_a(4)
VGG_LIMIT = 7e9  # binding-but-feasible for vgg16 @ 16 workers at tp=1


# ----------------------------------------------------------------------
# Registry invariants
# ----------------------------------------------------------------------

class TestShardabilityRegistry:
    def test_registry_disjoint_from_recurrent_kinds(self):
        """BPTT-accumulated kinds never shard: their deferred weight
        stash is priced full-width by the kernel, which is only sound
        because the registry cannot mark them shardable."""
        assert not set(SHARDABLE_KINDS) & set(RECURRENT_KINDS)

    def test_membership_is_the_predicate(self):
        for kind in SHARDABLE_KINDS:
            assert is_shardable(kind)
        for kind in RECURRENT_KINDS + ("other", "pool", "dropout"):
            assert not is_shardable(kind)

    def test_validate_tp_degrees_normalizes(self):
        assert validate_tp_degrees((4, 2, 2)) == (1, 2, 4)
        assert validate_tp_degrees([1]) == (1,)
        assert validate_tp_degrees([3]) == (1, 3)  # 1 is always offered
        assert validate_tp_degrees([]) == (1,)     # empty menu = disabled

    def test_validate_tp_degrees_rejects_bad_values(self):
        for bad in ([0], [-2], [1.5]):
            with pytest.raises(ValueError):
                validate_tp_degrees(bad)


# ----------------------------------------------------------------------
# tp=1 is a bitwise no-op, consumer by consumer
# ----------------------------------------------------------------------

def assert_results_identical(a, b):
    assert a.stages == b.stages
    assert a.slowest_stage_time == b.slowest_stage_time
    assert a.memory_bytes == b.memory_bytes
    assert a.config_string == b.config_string


class TestTp1BitwiseNoOp:
    @pytest.mark.parametrize("vectorize", [True, False])
    @pytest.mark.parametrize(
        "kwargs",
        [{}, {"memory_limit_bytes": VGG_LIMIT},
         {"memory_limit_bytes": VGG_LIMIT, "recompute": "auto"}],
        ids=["free", "capped", "capped-recompute"],
    )
    def test_planner(self, vectorize, kwargs):
        profile = analytic_profile("vgg16")
        base = PipeDreamOptimizer(
            profile, TOPO_A, vectorize=vectorize, **kwargs).solve()
        tp1 = PipeDreamOptimizer(
            profile, TOPO_A, vectorize=vectorize, tp_degrees=(1,),
            **kwargs).solve()
        assert_results_identical(tp1, base)

    def test_evaluator(self):
        profile = analytic_profile("vgg16")
        stages = [Stage(0, 10, 9), Stage(10, 15, 6),
                  Stage(15, len(profile), 1)]
        explicit = [Stage(s.start, s.stop, s.replicas, tp_degree=1)
                    for s in stages]
        for vectorize in (True, False):
            a = evaluate_partition_details(
                profile, stages, TOPO_A, vectorize=vectorize)
            b = evaluate_partition_details(
                profile, explicit, TOPO_A, vectorize=vectorize)
            assert a == b

    def test_both_engines(self):
        profile = analytic_profile("vgg16")
        for engine in ("event", "reference"):
            base = simulate_pipedream(profile, TOPO_A, engine=engine)
            tp1 = simulate_pipedream(
                profile, TOPO_A, engine=engine, tp_degrees=(1,))
            assert tp1.config == base.config
            assert tp1.throughput == base.throughput
            assert tp1.communication_overhead == base.communication_overhead
            assert tp1.bytes_per_sample == base.bytes_per_sample
            assert tp1.memory_per_worker == base.memory_per_worker

    def test_sweep_records_and_csv(self, tmp_path):
        base = run_sweep(["vgg16"], TOPO_A, [8],
                         strategies=("dp", "pipedream"))
        tp1 = run_sweep(["vgg16"], TOPO_A, [8],
                        strategies=("dp", "pipedream"), tp_degrees=(1,))
        assert [dataclasses.asdict(r) for r in base] == \
            [dataclasses.asdict(r) for r in tp1]
        base_csv, tp1_csv = tmp_path / "base.csv", tmp_path / "tp1.csv"
        records_to_csv(base, str(base_csv))
        records_to_csv(tp1, str(tp1_csv))
        assert base_csv.read_bytes() == tp1_csv.read_bytes()
        # The degenerate menu leaves the historical column set untouched.
        assert b"tp_degrees" not in base_csv.read_bytes()

    def test_serve_cache_key(self):
        from repro.serve.service import normalize_plan_request

        base = {"model": "vgg16", "cluster": "a", "servers": 4}
        plain = normalize_plan_request(dict(base))
        tp1 = normalize_plan_request(dict(base, tp_degrees=[1]))
        assert tp1.key == plain.key  # byte-equal historical key
        tp2 = normalize_plan_request(dict(base, tp_degrees=[1, 2]))
        assert tp2.key != plain.key
        # Append-only: historical keys are a strict prefix of tp keys.
        assert tp2.key[: len(plain.key)] == plain.key

    @given(
        depth=st.integers(1, 6),
        replicas=st.integers(1, 4),
        recompute=st.booleans(),
        spec=st.lists(
            st.tuples(
                st.integers(0, 100_000),
                st.integers(0, 1_000_000),
                st.sampled_from(
                    ["conv", "fc", "attention", "lstm", "embedding", "other"]
                ),
            ),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_memory_kernel(self, depth, replicas, recompute, spec):
        """``tp_degree=1`` takes the textually-original kernel path and
        equals the historical call bit for bit."""
        layers = [LayerProfile(f"l{i}", 1.0, a, w, kind=k)
                  for i, (a, w, k) in enumerate(spec)]
        profile = ModelProfile("fuzz", layers, batch_size=1)
        n = len(layers)
        for start in range(n):
            for stop in range(start + 1, n + 1):
                assert stage_memory_bytes(
                    profile, start, stop, depth, replicas,
                    recompute=recompute, tp_degree=1,
                ) == stage_memory_bytes(
                    profile, start, stop, depth, replicas,
                    recompute=recompute,
                )


# ----------------------------------------------------------------------
# Planner twins and plan shape with the axis enabled
# ----------------------------------------------------------------------

class TestTpPlannerTwins:
    @pytest.mark.parametrize(
        "kwargs",
        [{}, {"memory_limit_bytes": VGG_LIMIT},
         {"memory_limit_bytes": VGG_LIMIT, "recompute": "auto"}],
        ids=["free", "capped", "capped-recompute"],
    )
    def test_scalar_vectorized_identical_with_tp(self, kwargs):
        profile = analytic_profile("vgg16")
        vec = PipeDreamOptimizer(
            profile, TOPO_A, tp_degrees=(1, 2), vectorize=True,
            **kwargs).solve()
        ref = PipeDreamOptimizer(
            profile, TOPO_A, tp_degrees=(1, 2), vectorize=False,
            **kwargs).solve()
        assert_results_identical(vec, ref)

    def test_tp_plan_spends_the_physical_worker_budget(self):
        profile = analytic_profile("vgg16")
        plan = PipeDreamOptimizer(
            profile, TOPO_A, tp_degrees=(1, 2)).solve()
        assert sum(s.replicas * s.tp_degree for s in plan.stages) == \
            TOPO_A.total_workers

    def test_tp_plan_footprint_respects_the_cap(self):
        profile = analytic_profile("vgg16")
        plan = PipeDreamOptimizer(
            profile, TOPO_A, tp_degrees=(1, 2),
            memory_limit_bytes=VGG_LIMIT).solve()
        foot = pipeline_memory_footprint(profile, plan.stages)
        assert max(foot) <= VGG_LIMIT
        assert plan.memory_bytes == tuple(foot)

    def test_bucket_bytes_rejected_with_tp(self):
        profile = analytic_profile("vgg16")
        with pytest.raises(ValueError):
            PipeDreamOptimizer(
                profile, TOPO_A, tp_degrees=(1, 2), bucket_bytes=1e6)
        with pytest.raises(ValueError):
            run_sweep(["vgg16"], TOPO_A, [4], strategies=("pipedream",),
                      bucket_sizes=(1e6,), tp_degrees=(1, 2))
        tp_stage = [Stage(0, len(profile), 1, tp_degree=2),
                    Stage(0, len(profile), 1)]
        with pytest.raises(ValueError):
            evaluate_partition_details(
                profile, tp_stage[:1], TOPO_A, bucket_bytes=1e6)

    def test_allow_replication_false_still_allows_pure_tp(self):
        """``allow_replication=False`` bans data-parallel replicas, not
        intra-layer sharding: r=1 cells may still carry tp>1."""
        profile = analytic_profile("vgg16")
        plan = PipeDreamOptimizer(
            profile, TOPO_A, tp_degrees=(1, 2),
            allow_replication=False).solve()
        assert all(s.replicas == 1 for s in plan.stages)


# ----------------------------------------------------------------------
# Superset invariant over (recompute mask x tp assignment)
# ----------------------------------------------------------------------

def _build_profile(spec):
    layers = [LayerProfile(f"l{i}", c, a, w, kind=k)
              for i, (c, a, w, k) in enumerate(spec)]
    return ModelProfile("fuzz", layers, batch_size=1)


def _all_tp_plans(n, total_workers, degrees):
    """Every contiguous layout with every (replicas, tp_degree) assignment
    whose *physical* worker total is ``total_workers``."""

    def spans(start):
        if start == n:
            yield []
            return
        for stop in range(start + 1, n + 1):
            for rest in spans(stop):
                yield [(start, stop)] + rest

    def cells(k, total):
        if k == 0:
            if total == 0:
                yield []
            return
        for t in degrees:
            for r in range(1, total // t + 1):
                for rest in cells(k - 1, total - r * t):
                    yield [(r, t)] + rest

    for layout in spans(0):
        for assignment in cells(len(layout), total_workers):
            yield [Stage(a, b, r, tp_degree=t)
                   for (a, b), (r, t) in zip(layout, assignment)]


tp_layer_specs = st.lists(
    st.tuples(
        st.floats(0.05, 10.0, allow_nan=False),
        st.integers(0, 100_000),
        st.integers(0, 1_000_000),
        st.sampled_from(["conv", "fc", "attention", "lstm", "embedding"]),
    ),
    min_size=2,
    max_size=4,
)


class TestTpSupersetInvariant:
    """``bound-admitted ⊇ refined-admitted = footprint-feasible`` under
    every (recompute mask x tp assignment) — the acceptance invariant of
    the third axis, checked against brute-force enumeration rather than
    just the plans the DP happens to emit."""

    @staticmethod
    def check_invariant(profile, workers, limit_scale):
        topo = make_cluster("fuzz", workers, 1, 40.0, 40.0)
        model_bytes = sum(
            l.weight_bytes + l.activation_bytes for l in profile.layers
        )
        limit = max(1.0, limit_scale * model_bytes)
        auto_opt = PipeDreamOptimizer(
            profile, topo, memory_limit_bytes=limit, recompute="auto",
            tp_degrees=(1, 2),
        )
        n = len(profile)
        for stages in _all_tp_plans(n, workers, (1, 2)):
            for mask in itertools.product((False, True), repeat=len(stages)):
                masked = [
                    Stage(s.start, s.stop, s.replicas, recompute=flag,
                          tp_degree=s.tp_degree)
                    for s, flag in zip(stages, mask)
                ]
                foot = pipeline_memory_footprint(profile, masked)
                for s, stage in enumerate(masked):
                    # The 1F1B depth law over *physical* workers: the
                    # refined DP's ceil(suffix/width) is the simulator's
                    # warmup count, tp groups included.
                    downstream = sum(
                        st_.replicas * st_.tp_degree for st_ in masked[s:]
                    )
                    width = stage.replicas * stage.tp_degree
                    depth = -(-downstream // width)
                    assert depth == warmup_count(masked, s)
                    # refined-admitted = footprint-feasible: the mask
                    # value is the kernel at the exact depth and degree.
                    assert stage_memory_bytes(
                        profile, stage.start, stage.stop, depth,
                        stage.replicas, recompute=stage.recompute,
                        tp_degree=stage.tp_degree,
                    ) == foot[s]
                if max(foot) <= limit:
                    # bound ⊇ footprint-feasible: no (mask, tp) assignment
                    # can make phase 1 discard a feasible span.
                    for stage in masked:
                        assert auto_opt._memory_ok(
                            stage.start, stage.stop - 1)

    @given(
        spec=tp_layer_specs,
        workers=st.integers(2, 3),
        limit_scale=st.floats(0.05, 6.0, allow_nan=False),
    )
    @settings(max_examples=15, deadline=None)
    def test_invariant_over_masks_and_degrees(
        self, spec, workers, limit_scale
    ):
        self.check_invariant(_build_profile(spec), workers, limit_scale)


# ----------------------------------------------------------------------
# Memory monotonicity in the degree
# ----------------------------------------------------------------------

class TestMemoryMonotoneInDegree:
    @given(
        spec=st.lists(
            st.tuples(
                st.integers(0, 100_000),
                st.integers(0, 1_000_000),
                st.sampled_from(
                    ["conv", "fc", "attention", "lstm", "embedding", "other"]
                ),
            ),
            min_size=1,
            max_size=4,
        ),
        depth=st.integers(1, 6),
        replicas=st.integers(1, 3),
        recompute=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_non_increasing_in_tp_degree(
        self, spec, depth, replicas, recompute
    ):
        layers = [LayerProfile(f"l{i}", 1.0, a, w, kind=k)
                  for i, (a, w, k) in enumerate(spec)]
        profile = ModelProfile("fuzz", layers, batch_size=1)
        n = len(layers)
        for start in range(n):
            for stop in range(start + 1, n + 1):
                costs = [
                    stage_memory_bytes(
                        profile, start, stop, depth, replicas,
                        recompute=recompute, tp_degree=t,
                    )
                    for t in (1, 2, 4, 8)
                ]
                assert costs == sorted(costs, reverse=True)

    @given(
        spec=st.lists(
            st.tuples(
                st.integers(1_000, 100_000),
                st.integers(1_000, 1_000_000),
                st.sampled_from(["conv", "fc", "attention"]),
            ),
            min_size=1,
            max_size=4,
        ),
        depth=st.integers(1, 6),
        replicas=st.integers(1, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_strictly_decreasing_for_shardable_only_stages(
        self, spec, depth, replicas
    ):
        """A stage made purely of shardable layers with real byte counts
        must get strictly cheaper with every doubling of the degree."""
        layers = [LayerProfile(f"l{i}", 1.0, a, w, kind=k)
                  for i, (a, w, k) in enumerate(spec)]
        profile = ModelProfile("fuzz", layers, batch_size=1)
        n = len(layers)
        assert shardable_weight_bytes(profile, 0, n) == sum(
            l.weight_bytes for l in layers)
        assert shardable_activation_bytes(profile, 0, n) == sum(
            l.activation_bytes for l in layers)
        costs = [
            stage_memory_bytes(profile, 0, n, depth, replicas, tp_degree=t)
            for t in (1, 2, 4, 8)
        ]
        assert all(a > b for a, b in zip(costs, costs[1:]))


# ----------------------------------------------------------------------
# Mixed-span ring/α pricing (the satellite-3 regression)
# ----------------------------------------------------------------------

class TestMixedSpanAllreducePricing:
    """A tp group is ``t`` consecutive workers (typically intra-machine);
    its dp replica group is the *strided* group leaders (typically
    cross-machine).  The two groups activate different topology levels,
    and each collective charges α and the ring term only at the levels
    *its* ring actually runs on — never once per fused
    ``replicas x tp_degree`` span."""

    TOPO = Topology("hier", [
        TopologyLevel(4, 12e9, allreduce_latency=2e-5),
        TopologyLevel(2, 2e9, allreduce_latency=8e-5),
    ])

    def test_cost_factors_decompose_allreduce_time(self):
        """``allreduce_time == coeff * bytes + lat`` for groups spanning
        any mix of levels — the planner's closed form and the simulator's
        collective are the same pricing (same levels, same ring sizes,
        same α; the products only differ in association order)."""
        placement = Placement(self.TOPO)
        groups = [[0, 1], [0, 4], [0, 1, 2, 3], [0, 2, 4, 6],
                  list(range(8)), [0, 5], [1, 3, 6]]
        for group in groups:
            coeff, lat = allreduce_cost_factors(placement, group)
            for num_bytes in (1.0, 1e6, 3.7e7):
                assert allreduce_time(placement, group, num_bytes) == \
                    pytest.approx(coeff * num_bytes + lat, rel=1e-12)

    def test_alpha_per_active_level_per_group(self):
        placement = Placement(self.TOPO)
        # Stage r=2, t=4 on 8 workers: tp groups [0..3] / [4..7] stay
        # intra-machine; the dp group is the strided leaders [0, 4].
        tp_coeff, tp_lat = allreduce_cost_factors(placement, [0, 1, 2, 3])
        assert tp_lat == 2e-5            # level-0 α only
        assert tp_coeff == 2.0 * (3 / 4) / 12e9
        dp_coeff, dp_lat = allreduce_cost_factors(placement, [0, 4])
        assert dp_lat == 8e-5            # level-1 α only: no level-0 ring
        assert dp_coeff == 2.0 * (1 / 2) / 2e9
        fused_coeff, fused_lat = allreduce_cost_factors(
            placement, list(range(8)))
        assert fused_lat == 2e-5 + 8e-5  # the fused span pays both
        # Regression: pricing the dp sync over the fused span overcharges
        # both α and the ring terms.
        num_bytes = 1e6
        assert dp_coeff * num_bytes + dp_lat < \
            fused_coeff * num_bytes + fused_lat
        assert allreduce_time(placement, [0, 4], num_bytes) == \
            dp_coeff * num_bytes + dp_lat

    def test_singleton_groups_are_free(self):
        placement = Placement(self.TOPO)
        assert allreduce_cost_factors(placement, [3]) == (0.0, 0.0)
        assert allreduce_time(placement, [3], 1e6) == 0.0


# ----------------------------------------------------------------------
# Evaluator twins with the axis enabled
# ----------------------------------------------------------------------

class TestTpEvaluatorTwins:
    def _tp_stages(self, profile):
        n = len(profile)
        third = n // 3
        return [
            Stage(0, third, 2, tp_degree=2),
            Stage(third, 2 * third, 2),
            Stage(2 * third, n, 1, tp_degree=2),
        ]

    @pytest.mark.parametrize("model", ("vgg16", "gnmt8"))
    def test_vectorize_settings_identical(self, model):
        profile = analytic_profile(model)
        stages = self._tp_stages(profile)
        vec = evaluate_partition_details(
            profile, stages, TOPO_A, vectorize=True)
        ref = evaluate_partition_details(
            profile, stages, TOPO_A, vectorize=False)
        assert vec == ref

    def test_recompute_and_tp_compose(self):
        profile = analytic_profile("vgg16")
        stages = self._tp_stages(profile)
        flagged = [Stage(s.start, s.stop, s.replicas, recompute=True,
                         tp_degree=s.tp_degree) for s in stages]
        vec = evaluate_partition_details(
            profile, flagged, TOPO_A, vectorize=True)
        ref = evaluate_partition_details(
            profile, flagged, TOPO_A, vectorize=False)
        assert vec == ref
        # Checkpointing never raises a sharded stage's footprint either.
        plain = evaluate_partition_details(
            profile, stages, TOPO_A, vectorize=True)
        assert all(f <= p for f, p in
                   zip(vec.memory_bytes, plain.memory_bytes))
