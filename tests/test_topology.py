"""Hierarchical topology model (Figure 7, Table 2)."""

import pytest

from repro.core.topology import (
    CLUSTER_A,
    CLUSTER_B,
    CLUSTER_C,
    GBPS,
    GBYTES,
    Topology,
    TopologyLevel,
    cluster_1080ti,
    cluster_a,
    make_cluster,
)


class TestTopology:
    def test_total_workers(self, two_level):
        assert two_level.total_workers == 4

    def test_workers_per_component(self, two_level):
        assert two_level.workers_per_component(1) == 2
        assert two_level.workers_per_component(2) == 4

    def test_bandwidth_indexing(self, two_level):
        assert two_level.bandwidth(1) == 100.0
        assert two_level.bandwidth(2) == 10.0

    def test_flat_uses_slowest_link(self, two_level):
        flat = two_level.flat()
        assert flat.num_levels == 1
        assert flat.levels[0].count == 4
        assert flat.levels[0].bandwidth == 10.0

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            Topology("bad", [])

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            TopologyLevel(0, 1.0)
        with pytest.raises(ValueError):
            TopologyLevel(2, 0.0)


class TestSubset:
    def test_subset_within_server(self, two_level):
        sub = two_level.subset(2)
        assert sub.total_workers == 2
        assert sub.num_levels == 1  # trailing singleton level trimmed

    def test_subset_full(self, two_level):
        assert two_level.subset(4).total_workers == 4

    def test_subset_fills_servers_first(self):
        topo = make_cluster("t", 4, 4, 100.0, 10.0)
        sub = topo.subset(8)
        assert sub.levels[0].count == 4
        assert sub.levels[1].count == 2

    def test_subset_uneven_rejected(self):
        topo = make_cluster("t", 4, 4, 100.0, 10.0)
        with pytest.raises(ValueError):
            topo.subset(6)

    def test_subset_too_many_rejected(self, two_level):
        with pytest.raises(ValueError):
            two_level.subset(5)

    def test_subset_one_worker(self, two_level):
        assert two_level.subset(1).total_workers == 1


class TestPaperClusters:
    def test_cluster_a_shape(self):
        assert CLUSTER_A.levels[0].count == 4  # 4 V100s per server
        assert CLUSTER_A.levels[1].bandwidth == 10 * GBPS

    def test_cluster_b_shape(self):
        assert CLUSTER_B.levels[0].count == 8
        assert CLUSTER_B.levels[0].bandwidth == 30 * GBYTES  # NVLink
        assert CLUSTER_B.levels[1].bandwidth == 25 * GBPS

    def test_cluster_c_single_gpu_servers(self):
        assert CLUSTER_C.levels[0].count == 1
        assert CLUSTER_C.compute_scale == 0.5  # Titan X slower than V100

    def test_cluster_1080ti(self):
        topo = cluster_1080ti(2)
        assert topo.total_workers == 16
        assert topo.compute_scale < 1.0

    def test_intra_faster_than_inter(self):
        for topo in (CLUSTER_A, CLUSTER_B):
            assert topo.levels[0].bandwidth > topo.levels[-1].bandwidth

    def test_scaling_cluster_a(self):
        assert cluster_a(8).total_workers == 32
