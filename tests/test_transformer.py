"""Attention layers and the Transformer extension model."""

import numpy as np
import pytest

from repro.autodiff import Tensor, gradcheck
from repro.core.partition import PipeDreamOptimizer, Stage
from repro.core.topology import make_cluster
from repro.data import make_lm_data
from repro.models import build_transformer
from repro.nn import CrossEntropyLoss
from repro.nn.attention import (
    LayerNorm,
    MultiHeadSelfAttention,
    TransformerEncoderLayer,
)
from repro.optim import Adam
from repro.profiler import profile_model
from repro.runtime import PipelineTrainer, SequentialTrainer, evaluate_accuracy


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        ln = LayerNorm(8)
        x = Tensor(rng.standard_normal((4, 3, 8)) * 5 + 2)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gradcheck(self, rng):
        ln = LayerNorm(5)
        x = Tensor(rng.standard_normal((2, 5)), requires_grad=True)
        assert gradcheck(lambda x: (ln(x) ** 2).mean(), [x], atol=1e-4)

    def test_learned_affine(self, rng):
        ln = LayerNorm(4)
        ln.weight.data = np.full(4, 2.0)
        ln.bias.data = np.full(4, 1.0)
        x = Tensor(rng.standard_normal((3, 4)))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-9)


class TestMultiHeadSelfAttention:
    def test_output_shape(self, rng):
        mhsa = MultiHeadSelfAttention(12, 3, rng=rng)
        assert mhsa(Tensor(rng.standard_normal((2, 5, 12)))).shape == (2, 5, 12)

    def test_gradcheck(self, rng):
        mhsa = MultiHeadSelfAttention(6, 2, rng=rng)
        x = Tensor(rng.standard_normal((1, 3, 6)), requires_grad=True)
        assert gradcheck(lambda x: (mhsa(x) ** 2).mean(), [x], atol=1e-4)

    def test_bad_head_count_rejected(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3, rng=rng)

    def test_attention_mixes_positions(self, rng):
        """Changing one timestep changes the outputs at other timesteps."""
        mhsa = MultiHeadSelfAttention(8, 2, rng=rng)
        x = rng.standard_normal((1, 4, 8))
        base = mhsa(Tensor(x)).data
        x2 = x.copy()
        x2[0, 0] += 1.0
        perturbed = mhsa(Tensor(x2)).data
        assert not np.allclose(base[0, 3], perturbed[0, 3])

    def test_param_count(self, rng):
        mhsa = MultiHeadSelfAttention(8, 2, rng=rng)
        expected = 8 * 24 + 24 + 8 * 8 + 8  # qkv + proj
        assert mhsa.num_parameters() == expected


class TestTransformerEncoderLayer:
    def test_residual_structure(self, rng):
        """Zeroing the sublayer outputs leaves the input unchanged."""
        block = TransformerEncoderLayer(8, 2, rng=rng)
        block.attention.proj.weight.data[:] = 0.0
        block.attention.proj.bias.data[:] = 0.0
        block.ffn_out.weight.data[:] = 0.0
        block.ffn_out.bias.data[:] = 0.0
        x = Tensor(rng.standard_normal((2, 3, 8)))
        np.testing.assert_allclose(block(x).data, x.data, atol=1e-12)

    def test_gradcheck(self, rng):
        block = TransformerEncoderLayer(4, 2, ffn_dim=8, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 4)), requires_grad=True)
        assert gradcheck(lambda x: (block(x) ** 2).mean(), [x], atol=1e-4)


class TestTransformerModel:
    def test_forward_shape(self, rng):
        model = build_transformer(num_layers=2, vocab_size=16, dim=8,
                                  num_heads=2, rng=rng)
        tokens = rng.integers(0, 16, (3, 6))
        assert model(tokens).shape == (3, 6, 16)

    def test_layer_graph_kinds(self, rng):
        model = build_transformer(num_layers=2, vocab_size=16, dim=8,
                                  num_heads=2, rng=rng)
        graph = model.layer_graph(np.zeros((1, 6), dtype=np.int64))
        kinds = [l.kind for l in graph]
        assert kinds == ["embedding", "attention", "attention", "norm", "fc"]

    def test_sequence_too_long_rejected(self, rng):
        model = build_transformer(max_len=4, rng=rng)
        with pytest.raises(ValueError):
            model(np.zeros((1, 9), dtype=np.int64))

    def test_learns_language_modelling(self, rng):
        model = build_transformer(num_layers=2, vocab_size=16, dim=16,
                                  num_heads=2, rng=rng)
        X, y = make_lm_data(num_samples=64, seq_len=8, vocab_size=16, seed=2)
        trainer = SequentialTrainer(model, CrossEntropyLoss(),
                                    Adam(model.parameters(), lr=0.01))
        batches = [(X[i * 16 : (i + 1) * 16], y[i * 16 : (i + 1) * 16]) for i in range(4)]
        losses = [trainer.train_epoch(batches) for _ in range(6)]
        assert losses[-1] < 0.7 * losses[0]

    def test_pipelined_training(self, rng):
        model = build_transformer(num_layers=2, vocab_size=16, dim=16,
                                  num_heads=2, rng=rng)
        X, y = make_lm_data(num_samples=64, seq_len=8, vocab_size=16, seed=2)
        batches = [(X[i * 16 : (i + 1) * 16], y[i * 16 : (i + 1) * 16]) for i in range(4)]
        trainer = PipelineTrainer(
            model, [Stage(0, 2, 1), Stage(2, 5, 1)], CrossEntropyLoss(),
            lambda ps: Adam(ps, lr=0.01),
        )
        losses = [trainer.train_minibatches(batches) for _ in range(6)]
        assert losses[-1] < losses[0]

    def test_partitioner_handles_transformer(self, rng):
        model = build_transformer(num_layers=4, vocab_size=16, dim=16,
                                  num_heads=2, rng=rng)
        profile = profile_model(model, np.zeros((4, 8), dtype=np.int64), 1, 0)
        topo = make_cluster("t", 4, 1, 1e7, 1e7)
        plan = PipeDreamOptimizer(profile, topo).solve()
        assert sum(s.replicas for s in plan.stages) == 4


class TestCausalMasking:
    def test_causal_blocks_future(self, rng):
        """Position t's output must not depend on positions > t."""
        mhsa = MultiHeadSelfAttention(8, 2, causal=True, rng=rng)
        x = rng.standard_normal((1, 5, 8))
        base = mhsa(Tensor(x)).data
        x2 = x.copy()
        x2[0, 4] += 10.0  # perturb the LAST position
        perturbed = mhsa(Tensor(x2)).data
        np.testing.assert_allclose(base[0, :4], perturbed[0, :4], atol=1e-10)
        assert not np.allclose(base[0, 4], perturbed[0, 4])

    def test_non_causal_sees_future(self, rng):
        mhsa = MultiHeadSelfAttention(8, 2, causal=False, rng=rng)
        x = rng.standard_normal((1, 5, 8))
        base = mhsa(Tensor(x)).data
        x2 = x.copy()
        x2[0, 4] += 10.0
        perturbed = mhsa(Tensor(x2)).data
        assert not np.allclose(base[0, 0], perturbed[0, 0])

    def test_causal_model_end_to_end(self, rng):
        """The whole causal transformer respects autoregressive ordering."""
        model = build_transformer(num_layers=2, vocab_size=12, dim=8,
                                  num_heads=2, causal=True, rng=rng)
        tokens = rng.integers(0, 12, (1, 6))
        base = model(tokens).data
        tokens2 = tokens.copy()
        tokens2[0, 5] = (tokens2[0, 5] + 1) % 12
        perturbed = model(tokens2).data
        np.testing.assert_allclose(base[0, :5], perturbed[0, :5], atol=1e-10)

    def test_causal_gradcheck(self, rng):
        mhsa = MultiHeadSelfAttention(4, 2, causal=True, rng=rng)
        x = Tensor(rng.standard_normal((1, 3, 4)), requires_grad=True)
        assert gradcheck(lambda x: (mhsa(x) ** 2).mean(), [x], atol=1e-4)

    def test_causal_lm_still_learns_markov_chain(self, rng):
        """With honest masking, the LM task remains learnable (the data is
        a low-branching Markov chain, not a copy task)."""
        model = build_transformer(num_layers=2, vocab_size=16, dim=24,
                                  num_heads=2, causal=True, rng=rng)
        X, y = make_lm_data(num_samples=96, seq_len=8, vocab_size=16, seed=4)
        trainer = SequentialTrainer(model, CrossEntropyLoss(),
                                    Adam(model.parameters(), lr=0.01))
        batches = [(X[i * 16 : (i + 1) * 16], y[i * 16 : (i + 1) * 16]) for i in range(6)]
        losses = [trainer.train_epoch(batches) for _ in range(8)]
        assert losses[-1] < 0.8 * losses[0]
