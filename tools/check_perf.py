#!/usr/bin/env python
"""Perf-regression gate: rerun the workloads, compare to BENCH_perf.json.

Fails (exit 1) when any recorded workload is more than ``--threshold``
(default 2.0) times slower than its recorded seconds, when a recorded
workload disappeared from the registry, or when a correctness flag in a
workload's detail (e.g. the engine-equivalence check) comes back false.
New workloads that are not yet recorded are reported but don't fail —
refresh the baseline with ``tools/perf_report.py``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

from perf import REPORT_PATH, load_report, run_all  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when fresh/recorded exceeds this ratio")
    parser.add_argument("--baseline", type=Path, default=REPORT_PATH)
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"error: {args.baseline} missing — run tools/perf_report.py first")
        return 1
    recorded = load_report(args.baseline).get("workloads", {})
    fresh = run_all()

    failures = []
    name_w = max(len(n) for n in set(recorded) | set(fresh))
    for name, entry in fresh.items():
        seconds = entry["seconds"]
        base = recorded.get(name, {}).get("seconds")
        if base is None:
            print(f"{name:<{name_w}}  {seconds:>9.4f}s  (new — not recorded)")
            continue
        ratio = seconds / base if base > 0 else float("inf")
        status = "ok" if ratio <= args.threshold else "REGRESSION"
        print(f"{name:<{name_w}}  {seconds:>9.4f}s  vs {base:.4f}s  "
              f"{ratio:5.2f}x  {status}")
        if ratio > args.threshold:
            failures.append(
                f"{name}: {seconds:.4f}s is {ratio:.2f}x the recorded "
                f"{base:.4f}s (threshold {args.threshold:.1f}x)"
            )
        for key, value in entry.get("detail", {}).items():
            if isinstance(value, bool) and not value:
                failures.append(f"{name}: detail flag {key!r} is false")
        # Absolute-bound gate: workloads may expose a "gated_bounds" dict
        # of {metric: {"value": v, "min": m}} / {..., "max": M} entries —
        # hard floors/ceilings independent of the recorded baseline (the
        # recovery workload's >=5x warm re-plan and bounded
        # minibatches-lost live here).
        for key, spec in entry.get("detail", {}).get("gated_bounds", {}).items():
            value = spec.get("value")
            if value is None:
                failures.append(f"{name}: gated bound {key!r} has no value")
                continue
            if "min" in spec and value < spec["min"]:
                failures.append(
                    f"{name}: {key} {value:.4g} is below the required "
                    f"minimum {spec['min']:.4g}")
            if "max" in spec and value > spec["max"]:
                failures.append(
                    f"{name}: {key} {value:.4g} exceeds the allowed "
                    f"maximum {spec['max']:.4g}")
        # Latency gate: workloads may expose a "gated_latency_ms" dict
        # (the loadgen's p50/p99); each entry is held to the same ratio
        # threshold as the headline seconds.
        fresh_latency = entry.get("detail", {}).get("gated_latency_ms", {})
        base_latency = (
            recorded.get(name, {}).get("detail", {}).get("gated_latency_ms", {})
        )
        for key, value in fresh_latency.items():
            base_value = base_latency.get(key)
            if base_value is None or base_value <= 0:
                continue
            latency_ratio = value / base_value
            if latency_ratio > args.threshold:
                failures.append(
                    f"{name}: latency {key} {value:.3f}ms is "
                    f"{latency_ratio:.2f}x the recorded {base_value:.3f}ms "
                    f"(threshold {args.threshold:.1f}x)"
                )
    for name in recorded:
        if name not in fresh:
            failures.append(f"{name}: recorded in baseline but no longer registered")

    if failures:
        print("\nperf gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf gate ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
