#!/usr/bin/env python
"""Refresh BENCH_perf.json: run the perf workloads and record the results.

Usage:
    python tools/perf_report.py            # run, print table, write report
    python tools/perf_report.py --dry-run  # run + print, don't write
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

from perf import REPORT_PATH, load_report, run_all, write_report  # noqa: E402


def print_results(results: dict, previous: dict | None) -> None:
    name_w = max(len(name) for name in results)
    print(f"{'workload':<{name_w}}  {'seconds':>10}  {'previous':>10}  {'ratio':>6}")
    for name, entry in results.items():
        prev = (previous or {}).get(name, {}).get("seconds")
        prev_text = f"{prev:.4f}" if prev else "-"
        ratio = f"{entry['seconds'] / prev:.2f}x" if prev else "-"
        print(
            f"{name:<{name_w}}  {entry['seconds']:>10.4f}  {prev_text:>10}  {ratio:>6}"
        )


def main(argv: list[str]) -> int:
    dry_run = "--dry-run" in argv
    previous = None
    if REPORT_PATH.exists():
        previous = load_report().get("workloads", {})
    results = run_all()
    print_results(results, previous)
    if dry_run:
        print("\n--dry-run: BENCH_perf.json not written")
        return 0
    path = write_report(results)
    print(f"\nwrote {path.relative_to(ROOT)}")
    speed = results.get("event_vs_reference_1f1b_16w", {}).get("detail", {})
    if speed:
        print(
            f"event engine: {speed['speedup']:.2f}x over reference, "
            f"identical timeline: {speed['identical_timeline']}"
        )
    mem = results.get("memory_refined_solve_vgg16_16w", {}).get("detail", {})
    if mem:
        print(
            f"refined plan {mem['config']} (bound picked {mem['bound_config']} "
            f"at {mem['memory_limit_gb']:.0f} GB/worker):"
        )
        print("  stage         " + "  ".join(
            f"{i:>7}" for i in range(len(mem["stage_seconds"]))))
        print("  seconds       " + "  ".join(
            f"{t:7.4f}" for t in mem["stage_seconds"]))
        print("  boundary s    " + "  ".join(
            f"{t:7.4f}" for t in mem["boundary_seconds"]) + "      - ")
        print("  memory (GB)   " + "  ".join(
            f"{g:7.2f}" for g in mem["stage_memory_gb"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
