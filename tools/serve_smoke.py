#!/usr/bin/env python
"""CI smoke test for the planner service's HTTP surface.

Boots a real ``ThreadingHTTPServer`` on a free port, issues one request
per endpoint through :class:`HTTPPlannerClient`, and asserts the answers
are identical to the in-process service and (for /plan) bitwise-equal to
a cold :meth:`PipeDreamOptimizer.solve`.  Error mapping is exercised too:
a bad request must come back as HTTP 400 carrying the same message the
in-process path raises.

Usage: ``python tools/serve_smoke.py``  (exit 0 = pass)
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.core.partition import PipeDreamOptimizer  # noqa: E402
from repro.serve import (  # noqa: E402
    HTTPPlannerClient,
    PlannerClient,
    PlannerService,
    RequestError,
    ServerThread,
    normalize_plan_request,
)

PLAN_REQUEST = {"model": "vgg16", "cluster": "a", "servers": 4,
                "num_workers": 16, "memory_limit_bytes": 16e9}


def check(label: str, condition: bool) -> None:
    print(f"  {'ok' if condition else 'FAIL'}  {label}")
    if not condition:
        raise SystemExit(f"serve smoke failed: {label}")


def main() -> int:
    service = PlannerService()
    inproc = PlannerClient(service)
    with ServerThread(service) as url:
        http = HTTPPlannerClient(url)
        print(f"planner server up at {url}")

        check("healthz", http.healthy())

        served = http.plan(PLAN_REQUEST)
        local = inproc.plan(PLAN_REQUEST)
        check("plan: http == in-process",
              (served["stages"], served["slowest_stage_time"])
              == (local["stages"], local["slowest_stage_time"]))

        query = normalize_plan_request(PLAN_REQUEST)
        cold = PipeDreamOptimizer(
            query.profile, query.topology,
            memory_limit_bytes=query.memory_limit_bytes,
        ).solve(query.num_workers)
        check("plan: served == cold solve (bitwise)",
              served["stages"]
              == [[s.start, s.stop, s.replicas] for s in cold.stages]
              and served["slowest_stage_time"] == cold.slowest_stage_time)
        check("plan: second request is a cache hit",
              http.plan(PLAN_REQUEST)["cached"] is True)

        sim = http.simulate(dict(PLAN_REQUEST, strategy="pipedream",
                                 minibatches=16))
        check("simulate: sane throughput", sim["throughput"] > 0)

        swept = http.sweep({"models": ["vgg16"], "cluster": "a",
                            "servers": 1, "counts": [4],
                            "minibatches": 16})
        check("sweep: records returned", len(swept["records"]) >= 1)

        results = http.batch([PLAN_REQUEST, {"model": "not-a-model"}])
        check("batch: good slot answered", "stages" in results[0])
        check("batch: bad slot isolated in-slot", "error" in results[1])

        try:
            http.plan({"model": "not-a-model"})
        except RequestError as exc:
            check("errors: HTTP 400 -> RequestError",
                  "unknown model" in str(exc))
        else:
            check("errors: HTTP 400 -> RequestError", False)

        stats = http.stats()
        check("stats: plan cache hit recorded",
              stats["plan_cache"]["hits"] >= 1)
    print("serve smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
