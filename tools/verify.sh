#!/usr/bin/env bash
# Single verification entry point: tier-1 tests + the perf-regression gate.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== perf gate (vs BENCH_perf.json) =="
python tools/check_perf.py "$@"
